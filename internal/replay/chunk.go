// Package replay is the host-side durable record stream: an opt-in
// append-only log of every event the application logs, organized into
// time-ordered chunks so a query submitted after an incident can replay
// the recent past through the normal central pipeline before going live
// (DESIGN.md §15).
//
// The layout follows the vault/chunk/seal/index shape of append-only
// event stores: one active in-memory chunk accumulates encoded events
// until a size or age threshold seals it; sealing freezes the chunk
// behind a lightweight index (event-type bitmap, request-id bloom
// filter, min/max timestamp) and hands it to a background flusher that
// tiers it to disk and enforces retention (max bytes, max age). Scans
// prune whole chunks on the index before decoding a single event.
//
//scrub:longlived
package replay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"scrub/internal/event"
)

// Chunk file layout, all fixed-width fields little-endian:
//
//	magic     [8]byte  "SCRBCHK1"
//	minTs     int64    smallest event TimeNanos in the chunk
//	maxTs     int64    largest event TimeNanos in the chunk
//	typeBits  uint64   bitmap of hash(event type) % 64
//	bloom     [8]uint64  512-bit request-id bloom filter (2 probes)
//	count     uint32   number of records
//	payload   uvarint-length-prefixed event.AppendEvent records
//	crc       uint32   IEEE CRC-32 of everything before it
//
// A chunk is a single atomic unit: it is written to disk in one call
// and validated wholesale on recovery. A crash mid-write leaves a
// truncated tail file that fails the length or CRC check and is
// dropped; every earlier chunk is bit-intact or it is dropped too.
const (
	chunkMagic   = "SCRBCHK1"
	bloomWords   = 8
	chunkHdrSize = 8 + 8 + 8 + 8 + bloomWords*8 + 4 + 4 // magic..payloadLen
	chunkMinSize = chunkHdrSize + 4                     // empty payload + crc
)

var (
	errBadMagic  = errors.New("replay: bad chunk magic")
	errTruncated = errors.New("replay: truncated chunk")
	errBadCRC    = errors.New("replay: chunk crc mismatch")
)

// Index is the per-chunk summary consulted before any decode work. The
// type bitmap and request-id bloom are approximate (false positives
// only); the timestamp bounds are exact.
type Index struct {
	MinTs int64
	MaxTs int64
	Count uint32

	typeBits uint64
	bloom    [bloomWords]uint64
}

// typeBit hashes an event-type name onto the 64-bit type bitmap (FNV-1a).
func typeBit(name string) uint64 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return 1 << (h % 64)
}

// bloomProbes derives two independent probe positions from a request id
// (splitmix64 finalizer; the halves index the 512-bit filter).
func bloomProbes(id uint64) (uint32, uint32) {
	z := id + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return uint32(z) % (bloomWords * 64), uint32(z>>32) % (bloomWords * 64)
}

func (ix *Index) addType(name string) { ix.typeBits |= typeBit(name) }
func (ix *Index) addRequest(id uint64) {
	a, b := bloomProbes(id)
	ix.bloom[a/64] |= 1 << (a % 64)
	ix.bloom[b/64] |= 1 << (b % 64)
}
func (ix *Index) observeTs(ts int64) {
	if ix.Count == 0 || ts < ix.MinTs {
		ix.MinTs = ts
	}
	if ix.Count == 0 || ts > ix.MaxTs {
		ix.MaxTs = ts
	}
}

// MayContainType reports whether the chunk can hold events of the named
// type. False means definitely not; true means possibly.
func (ix *Index) MayContainType(name string) bool {
	return ix.typeBits&typeBit(name) != 0
}

// MayContainRequest reports whether the chunk can hold events for the
// request id. False means definitely not; true means possibly.
func (ix *Index) MayContainRequest(id uint64) bool {
	a, b := bloomProbes(id)
	return ix.bloom[a/64]&(1<<(a%64)) != 0 && ix.bloom[b/64]&(1<<(b%64)) != 0
}

// Overlaps reports whether any event time in the chunk can fall inside
// the half-open range [fromNs, toNs).
func (ix *Index) Overlaps(fromNs, toNs int64) bool {
	return ix.Count > 0 && ix.MaxTs >= fromNs && ix.MinTs < toNs
}

// appendChunk serializes a sealed chunk: header + payload + CRC. The
// payload is the record bytes the active chunk accumulated.
func appendChunk(dst []byte, ix *Index, payload []byte) []byte {
	dst = append(dst, chunkMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(ix.MinTs))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(ix.MaxTs))
	dst = binary.LittleEndian.AppendUint64(dst, ix.typeBits)
	for _, w := range ix.bloom {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	dst = binary.LittleEndian.AppendUint32(dst, ix.Count)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[len(dst)-len(payload)-chunkHdrSize:len(dst)]))
}

// DecodeChunk validates a serialized chunk and returns its index and
// payload (aliasing b). It rejects truncation, trailing garbage, and
// corruption — the recovery path drops any chunk this refuses.
func DecodeChunk(b []byte) (Index, []byte, error) {
	var ix Index
	if len(b) < chunkMinSize {
		return ix, nil, errTruncated
	}
	if string(b[:8]) != chunkMagic {
		return ix, nil, errBadMagic
	}
	off := 8
	ix.MinTs = int64(binary.LittleEndian.Uint64(b[off:]))
	ix.MaxTs = int64(binary.LittleEndian.Uint64(b[off+8:]))
	ix.typeBits = binary.LittleEndian.Uint64(b[off+16:])
	off += 24
	for i := 0; i < bloomWords; i++ {
		ix.bloom[i] = binary.LittleEndian.Uint64(b[off:])
		off += 8
	}
	ix.Count = binary.LittleEndian.Uint32(b[off:])
	plen := binary.LittleEndian.Uint32(b[off+4:])
	off += 8
	if uint64(len(b)) != uint64(off)+uint64(plen)+4 {
		return Index{}, nil, errTruncated
	}
	payload := b[off : off+int(plen)]
	want := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(b[:len(b)-4]) != want {
		return Index{}, nil, errBadCRC
	}
	return ix, payload, nil
}

// iterRecords walks a chunk payload's uvarint-length-prefixed records.
// It is defensive against malformed lengths (the fuzz target feeds it
// arbitrary bytes) even though the CRC normally vouches for structure.
func iterRecords(payload []byte, count uint32, fn func(rec []byte) error) error {
	seen := uint32(0)
	for len(payload) > 0 {
		l, n := binary.Uvarint(payload)
		if n <= 0 || l > uint64(len(payload)-n) {
			return fmt.Errorf("replay: corrupt record length at offset %d", len(payload))
		}
		if err := fn(payload[n : n+int(l)]); err != nil {
			return err
		}
		payload = payload[n+int(l):]
		seen++
	}
	if seen != count {
		return fmt.Errorf("replay: chunk count %d but %d records", count, seen)
	}
	return nil
}

// DecodeRecords decodes every event in a chunk payload against the
// catalog. Events whose type is no longer registered are skipped (the
// catalog may have changed across a restart); structural corruption is
// an error.
func DecodeRecords(payload []byte, count uint32, cat *event.Catalog, fn func(ev *event.Event) bool) error {
	stop := errors.New("stop")
	err := iterRecords(payload, count, func(rec []byte) error {
		ev, n, err := event.DecodeEvent(rec, cat)
		if err != nil {
			if errors.Is(err, event.ErrUnknownType) {
				return nil
			}
			return err
		}
		if n != len(rec) {
			return fmt.Errorf("replay: record has %d trailing bytes", len(rec)-n)
		}
		if !fn(ev) {
			return stop
		}
		return nil
	})
	if errors.Is(err, stop) {
		return nil
	}
	return err
}
