package replay

import (
	"math/rand"
	"testing"
	"time"

	"scrub/internal/event"
)

// sealedCorpus builds real sealed-chunk bytes for the fuzz seed corpus:
// the decoder's happy path plus systematic corruptions of it.
func sealedCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	cat := testCatalog()
	rng := rand.New(rand.NewSource(42))
	var out [][]byte
	for _, n := range []int{1, 25, 120} {
		s, err := Open(Options{Catalog: cat, ChunkBytes: 1 << 20, MaxAge: time.Hour})
		if err != nil {
			tb.Fatal(err)
		}
		ts := int64(500)
		for i := 0; i < n; i++ {
			ts += int64(rng.Intn(2000) + 1)
			s.Append(genTestEvent(rng, cat, ts))
		}
		s.Seal()
		s.mu.Lock()
		data := append([]byte(nil), s.chunks[0].data...)
		s.mu.Unlock()
		s.Close()
		out = append(out, data)
	}
	return out
}

// FuzzDecodeChunk drives the chunk decoder — the surface that parses
// recovered disk bytes after a crash — with arbitrary input. It must
// never panic, and anything it accepts must be structurally sound
// enough to iterate and decode without error.
func FuzzDecodeChunk(f *testing.F) {
	for _, data := range sealedCorpus(f) {
		f.Add(data)
		// Truncations and bit flips of valid chunks steer the fuzzer at
		// the validation branches (the crash-recovery cases).
		f.Add(data[:len(data)/2])
		f.Add(data[:chunkHdrSize])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte(chunkMagic))

	cat := testCatalog()
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, payload, err := DecodeChunk(data)
		if err != nil {
			return
		}
		// Accepted chunks must iterate and decode without panics. (Index
		// consistency with the decoded events is the property test's
		// contract — a fuzzer-built chunk can legally carry any index.)
		decoded := uint32(0)
		if err := DecodeRecords(payload, ix.Count, cat, func(*event.Event) bool {
			decoded++
			return true
		}); err != nil {
			// Structural corruption behind a colliding CRC: rejecting is
			// fine, panicking is not.
			return
		}
		_ = decoded
	})
}
