package replay

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"scrub/internal/event"
)

func testCatalog() *event.Catalog {
	cat := event.NewCatalog()
	cat.MustRegister(event.MustSchema("bid",
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
		event.FieldDef{Name: "country", Kind: event.KindString},
	))
	cat.MustRegister(event.MustSchema("exclusion",
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
		event.FieldDef{Name: "reason", Kind: event.KindString},
	))
	return cat
}

var testCountries = []string{"us", "uk", "de", "fr"}

// genEvent draws a random event over the test catalog.
func genTestEvent(rng *rand.Rand, cat *event.Catalog, ts int64) *event.Event {
	if rng.Intn(4) == 0 {
		sch, _ := cat.Lookup("exclusion")
		return &event.Event{
			Schema: sch, RequestID: uint64(1 + rng.Intn(1000)), TimeNanos: ts,
			Values: []event.Value{
				event.Int(int64(rng.Intn(300))),
				event.Str(testCountries[rng.Intn(len(testCountries))]),
			},
		}
	}
	sch, _ := cat.Lookup("bid")
	return &event.Event{
		Schema: sch, RequestID: uint64(1 + rng.Intn(1000)), TimeNanos: ts,
		Values: []event.Value{
			event.Int(int64(rng.Intn(200))),
			event.Float(float64(rng.Intn(1000)) / 100),
			event.Str(testCountries[rng.Intn(len(testCountries))]),
		},
	}
}

func eventsEqual(a, b *event.Event) bool {
	if a.Schema.Name() != b.Schema.Name() || a.RequestID != b.RequestID ||
		a.TimeNanos != b.TimeNanos || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if !a.Values[i].Equal(b.Values[i]) {
			return false
		}
	}
	return true
}

// TestSealIndexRoundTrip is the seal/index property test: for random
// event sets, every sealed chunk must decode bit-for-bit, the timestamp
// bounds must be exact, and the type bitmap and request-id bloom must
// have no false negatives.
func TestSealIndexRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cat := testCatalog()
		s, err := Open(Options{Catalog: cat, ChunkBytes: 1 << 20, MaxAge: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		n := 50 + rng.Intn(200)
		evs := make([]*event.Event, n)
		ts := int64(1000)
		for i := range evs {
			ts += int64(rng.Intn(5000) + 1)
			evs[i] = genTestEvent(rng, cat, ts)
			s.Append(evs[i])
		}
		s.Seal()

		s.mu.Lock()
		if len(s.chunks) != 1 {
			s.mu.Unlock()
			t.Fatalf("seed %d: want 1 sealed chunk, got %d", seed, len(s.chunks))
		}
		data := s.chunks[0].data
		s.mu.Unlock()

		ix, payload, err := DecodeChunk(data)
		if err != nil {
			t.Fatalf("seed %d: decode sealed chunk: %v", seed, err)
		}
		if int(ix.Count) != n {
			t.Fatalf("seed %d: count %d != %d", seed, ix.Count, n)
		}
		var wantMin, wantMax int64
		for i, ev := range evs {
			if i == 0 || ev.TimeNanos < wantMin {
				wantMin = ev.TimeNanos
			}
			if i == 0 || ev.TimeNanos > wantMax {
				wantMax = ev.TimeNanos
			}
			if !ix.MayContainType(ev.Schema.Name()) {
				t.Fatalf("seed %d: type bitmap false negative for %q", seed, ev.Schema.Name())
			}
			if !ix.MayContainRequest(ev.RequestID) {
				t.Fatalf("seed %d: request bloom false negative for %d", seed, ev.RequestID)
			}
		}
		if ix.MinTs != wantMin || ix.MaxTs != wantMax {
			t.Fatalf("seed %d: ts bounds [%d,%d] != [%d,%d]", seed, ix.MinTs, ix.MaxTs, wantMin, wantMax)
		}
		i := 0
		err = DecodeRecords(payload, ix.Count, cat, func(ev *event.Event) bool {
			if !eventsEqual(ev, evs[i]) {
				t.Fatalf("seed %d: record %d round-trip mismatch: %+v != %+v", seed, i, ev, evs[i])
			}
			i++
			return true
		})
		if err != nil {
			t.Fatalf("seed %d: decode records: %v", seed, err)
		}
		if i != n {
			t.Fatalf("seed %d: decoded %d of %d records", seed, i, n)
		}
		s.Close()
	}
}

// TestBloomRejectsAbsent checks the index actually prunes: ids and types
// never appended should mostly test negative.
func TestBloomRejectsAbsent(t *testing.T) {
	cat := testCatalog()
	s, err := Open(Options{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sch, _ := cat.Lookup("bid")
	for i := 0; i < 50; i++ {
		s.Append(&event.Event{Schema: sch, RequestID: uint64(i), TimeNanos: int64(i + 1),
			Values: []event.Value{event.Int(1), event.Float(1), event.Str("us")}})
	}
	s.Seal()
	s.mu.Lock()
	ix := s.chunks[0].ix
	s.mu.Unlock()
	if ix.MayContainType("no_such_type") {
		t.Error("type bitmap claims a type never appended (possible but suspicious for 1 type)")
	}
	neg := 0
	for id := uint64(10_000); id < 11_000; id++ {
		if !ix.MayContainRequest(id) {
			neg++
		}
	}
	// 50 ids × 2 probes in 512 bits → false-positive rate ~3%; demand
	// the overwhelming majority of absent ids are rejected.
	if neg < 900 {
		t.Fatalf("bloom rejected only %d/1000 absent ids", neg)
	}
}

// TestScanRangeAndOrder: scans honor the half-open time range and the
// type filter, and deliver events in append order across chunk seals.
func TestScanRangeAndOrder(t *testing.T) {
	cat := testCatalog()
	s, err := Open(Options{Catalog: cat, ChunkBytes: 256}) // seal every few events
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sch, _ := cat.Lookup("bid")
	const n = 100
	for i := 0; i < n; i++ {
		s.Append(&event.Event{Schema: sch, RequestID: uint64(i), TimeNanos: int64(i) * 1000,
			Values: []event.Value{event.Int(int64(i)), event.Float(1), event.Str("us")}})
	}
	// No Seal: the tail must be served from the active chunk.
	var got []int64
	err = s.Scan(20_000, 80_000, "bid", func(ev *event.Event) bool {
		got = append(got, ev.TimeNanos)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("scan returned %d events, want 60", len(got))
	}
	for i, ts := range got {
		if ts != int64(20+i)*1000 {
			t.Fatalf("event %d ts=%d, want %d (order/range violation)", i, ts, (20+i)*1000)
		}
	}
	// Type filter: no exclusions were appended.
	count := 0
	if err := s.Scan(0, 1<<62, "exclusion", func(*event.Event) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("type-filtered scan returned %d events, want 0", count)
	}
	// Early stop.
	count = 0
	s.Scan(0, 1<<62, "bid", func(*event.Event) bool { count++; return count < 7 })
	if count != 7 {
		t.Fatalf("early-stopped scan visited %d events, want 7", count)
	}
}

// TestCrashRecovery: sealed chunks on disk survive a restart bit-intact;
// a truncated tail chunk (crash mid-write) is detected and dropped.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog()
	s, err := Open(Options{Catalog: cat, Dir: dir, ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	sch, _ := cat.Lookup("bid")
	const n = 60
	for i := 0; i < n; i++ {
		s.Append(&event.Event{Schema: sch, RequestID: uint64(i), TimeNanos: int64(i) * 1000,
			Values: []event.Value{event.Int(int64(i)), event.Float(2), event.Str("de")}})
	}
	s.Close() // seals the tail and drains the flusher

	files, _ := filepath.Glob(filepath.Join(dir, "chunk-*.rec"))
	if len(files) < 3 {
		t.Fatalf("want ≥3 chunk files, got %d", len(files))
	}

	// Simulate a crash mid-write: truncate the newest chunk file.
	last := files[len(files)-1]
	fi, _ := os.Stat(last)
	if err := os.Truncate(last, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	// Count events in the surviving (intact) chunks.
	intact := 0
	for _, f := range files[:len(files)-1] {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		ix, _, err := DecodeChunk(data)
		if err != nil {
			t.Fatalf("pre-crash chunk %s invalid: %v", f, err)
		}
		intact += int(ix.Count)
	}

	s2, err := Open(Options{Catalog: cat, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var got []int64
	if err := s2.Scan(0, 1<<62, "", func(ev *event.Event) bool {
		got = append(got, ev.TimeNanos)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != intact {
		t.Fatalf("recovered %d events, want %d (intact chunks only)", len(got), intact)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("recovered events out of order at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	if _, err := os.Stat(last); !os.IsNotExist(err) {
		t.Errorf("truncated tail chunk %s was not dropped", last)
	}
}

// TestRetentionEvictionOrdering: the byte cap evicts strictly oldest
// first, and the store keeps honoring scans over what remains.
func TestRetentionEvictionOrdering(t *testing.T) {
	cat := testCatalog()
	s, err := Open(Options{Catalog: cat, ChunkBytes: 512, MaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sch, _ := cat.Lookup("bid")
	const n = 200
	for i := 0; i < n; i++ {
		s.Append(&event.Event{Schema: sch, RequestID: uint64(i), TimeNanos: int64(i) * 1000,
			Values: []event.Value{event.Int(int64(i)), event.Float(3), event.Str("fr")}})
	}
	st := s.StoreStats()
	if st.Evictions == 0 {
		t.Fatal("byte cap never triggered an eviction")
	}
	if st.TotalBytes > 2048 {
		t.Fatalf("retention left %d bytes > cap 2048", st.TotalBytes)
	}
	// Whatever survived must be a contiguous suffix of the appends: an
	// eviction order other than oldest-first would leave a gap.
	var got []int64
	if err := s.Scan(0, 1<<62, "", func(ev *event.Event) bool {
		got = append(got, ev.TimeNanos)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("retention evicted everything")
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1000 {
			t.Fatalf("gap in surviving events at %d: %d then %d — eviction was not oldest-first", i, got[i-1], got[i])
		}
	}
	if got[len(got)-1] != int64(n-1)*1000 {
		t.Fatalf("newest surviving event is %d, want %d — newest chunk was evicted", got[len(got)-1], (n-1)*1000)
	}
}

// TestRetentionMaxAge: chunks older than MaxAge (by store clock) are
// evicted on the next seal.
func TestRetentionMaxAge(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	cat := testCatalog()
	s, err := Open(Options{Catalog: cat, Clock: clock, MaxAge: time.Minute, ChunkBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sch, _ := cat.Lookup("bid")
	mk := func(ts int64) *event.Event {
		return &event.Event{Schema: sch, RequestID: 1, TimeNanos: ts,
			Values: []event.Value{event.Int(1), event.Float(1), event.Str("us")}}
	}
	s.Append(mk(1))
	s.Seal()
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	s.Append(mk(2))
	s.Seal() // seal-time retention sees the first chunk aged out
	st := s.StoreStats()
	if st.Evictions != 1 || st.Chunks != 1 {
		t.Fatalf("want 1 eviction leaving 1 chunk, got %d evictions, %d chunks", st.Evictions, st.Chunks)
	}
	var got []int64
	s.Scan(0, 1<<62, "", func(ev *event.Event) bool { got = append(got, ev.TimeNanos); return true })
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("surviving events %v, want [2]", got)
	}
}

// TestMemoryTierTrim: once chunks are safely on disk, the memory tier
// drops payloads beyond MemBytes and scans read them back from disk.
func TestMemoryTierTrim(t *testing.T) {
	dir := t.TempDir()
	cat := testCatalog()
	s, err := Open(Options{Catalog: cat, Dir: dir, ChunkBytes: 512, MemBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	sch, _ := cat.Lookup("bid")
	const n = 100
	for i := 0; i < n; i++ {
		s.Append(&event.Event{Schema: sch, RequestID: uint64(i), TimeNanos: int64(i) * 1000,
			Values: []event.Value{event.Int(int64(i)), event.Float(4), event.Str("uk")}})
	}
	// Wait for the flusher to persist and trim.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		persisted := 0
		dropped := 0
		for _, c := range s.chunks {
			if c.onDisk {
				persisted++
			}
			if c.data == nil {
				dropped++
			}
		}
		total := len(s.chunks)
		s.mu.Unlock()
		if persisted == total && dropped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flusher never persisted+trimmed: %d/%d persisted, %d dropped", persisted, total, dropped)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A full scan must still see every event, reading trimmed chunks
	// back from disk.
	count := 0
	want := int(s.StoreStats().ActiveCount)
	s.mu.Lock()
	for _, c := range s.chunks {
		want += int(c.ix.Count)
	}
	s.mu.Unlock()
	if err := s.Scan(0, 1<<62, "", func(*event.Event) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != want {
		t.Fatalf("scan over trimmed store returned %d events, want %d", count, want)
	}
	s.Close()
}

// TestConcurrentAppendScan: appends and scans race without data
// corruption (run under -race).
func TestConcurrentAppendScan(t *testing.T) {
	cat := testCatalog()
	s, err := Open(Options{Catalog: cat, ChunkBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sch, _ := cat.Lookup("bid")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Append(&event.Event{Schema: sch, RequestID: uint64(g*1000 + i), TimeNanos: int64(i) * 100,
					Values: []event.Value{event.Int(int64(i)), event.Float(1), event.Str("us")}})
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := s.Scan(0, 1<<62, "bid", func(*event.Event) bool { return true }); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.StoreStats().Recorded; got != 2000 {
		t.Fatalf("recorded %d events, want 2000", got)
	}
}

func TestOpenRequiresCatalog(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without a catalog should fail")
	}
}
