package core

import (
	"sync/atomic"
	"testing"
	"time"

	"scrub/internal/central"
	"scrub/internal/chaos"
	"scrub/internal/host"
	"scrub/internal/transport"
)

// TestChaosPartitionDegradesAndHeals is the full failure arc over real
// TCP with fault injection: a host is partitioned mid-query; its stream
// lease expires; windows keep closing and carry the degraded flag naming
// the evicted host; the partition heals; the stream is re-admitted and
// windows come out clean again. The chaos seed is fixed, so the fault
// decisions replay identically.
func TestChaosPartitionDegradesAndHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second failure scenario")
	}
	inj := chaos.New(1234)
	nc, err := NewNetCluster(NetConfig{
		Catalog: testCatalog(),
		Hosts: []HostSpec{
			{Name: "h1", Service: "BidServers", DC: "DC1"},
			{Name: "h2", Service: "BidServers", DC: "DC1"},
		},
		Agent: host.Config{
			FlushInterval:     10 * time.Millisecond,
			HeartbeatInterval: 50 * time.Millisecond,
		},
		Central:  central.Options{LeaseTTL: 600 * time.Millisecond},
		Sink:     host.NetSinkOptions{DialTimeout: 500 * time.Millisecond},
		Control:  host.ControlOptions{BaseBackoff: 50 * time.Millisecond, MaxBackoff: 200 * time.Millisecond},
		WrapConn: inj.Wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	client, err := nc.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	qs, err := client.Query(`select count(*) from bid window 500ms duration 30s`)
	if err != nil {
		t.Fatal(err)
	}
	waitInstalled := time.Now().Add(5 * time.Second)
	for {
		installed := 0
		for i := 0; i < nc.NumAgents(); i++ {
			if len(nc.Agent(i).ActiveQueries()) > 0 {
				installed++
			}
		}
		if installed == nc.NumAgents() {
			break
		}
		if time.Now().After(waitInstalled) {
			t.Fatalf("only %d/%d agents activated the query", installed, nc.NumAgents())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Both hosts log continuously in the background until the arc ends.
	var stop atomic.Bool
	loggers := make(chan struct{})
	go func() {
		defer close(loggers)
		var req uint64
		for !stop.Load() {
			req++
			now := time.Now()
			logBid(t, nc.Agent(0), req, 1, 1.0, now)
			logBid(t, nc.Agent(1), req+1<<32, 2, 2.0, now)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Phase A: healthy. Long enough (vs. the 2s lateness) that the first
	// windows are emitted before any fault lands.
	time.Sleep(3 * time.Second)
	// Phase B: two-way partition of h2. Its batches blackhole, its lease
	// expires, and windows emitted in this span must be degraded.
	inj.Set("h2", chaos.Partitioned())
	time.Sleep(2600 * time.Millisecond)
	// Phase C: heal. h2's next batch re-admits the stream.
	inj.Heal("h2")
	time.Sleep(2800 * time.Millisecond)

	stop.Store(true)
	<-loggers
	// Let in-flight windows drain, then end the query.
	time.Sleep(500 * time.Millisecond)
	if err := qs.Cancel(); err != nil {
		t.Fatal(err)
	}
	var wins []transport.ResultWindow
	for rw := range qs.Windows {
		wins = append(wins, rw)
	}
	stats, err := qs.Final()
	if err != nil {
		t.Fatal(err)
	}

	if len(wins) == 0 {
		t.Fatal("no windows emitted")
	}
	var clean, degraded int
	firstState := -1
	for _, rw := range wins {
		if !rw.Degraded {
			clean++
			if firstState == -1 {
				firstState = 0
			}
			continue
		}
		degraded++
		if firstState == -1 {
			firstState = 1
		}
		// Every degraded window must name exactly who is missing.
		var h2Evicted, h1Evicted bool
		for _, s := range rw.Streams {
			switch s.HostID {
			case "h2":
				h2Evicted = h2Evicted || s.Evicted
			case "h1":
				h1Evicted = h1Evicted || s.Evicted
			}
		}
		if !h2Evicted {
			t.Errorf("degraded window [%d,%d) does not name h2 as evicted: %+v", rw.WindowStart, rw.WindowEnd, rw.Streams)
		}
		if h1Evicted {
			t.Errorf("window [%d,%d) marks healthy h1 evicted", rw.WindowStart, rw.WindowEnd)
		}
	}
	if degraded == 0 {
		t.Fatalf("no degraded windows across the partition (%d windows total)", len(wins))
	}
	if clean == 0 {
		t.Fatalf("no clean windows at all (%d windows total)", len(wins))
	}
	if firstState != 0 {
		t.Error("first emitted window was already degraded; phase A produced nothing clean")
	}
	if last := wins[len(wins)-1]; last.Degraded {
		t.Errorf("last window still degraded after heal: [%d,%d)", last.WindowStart, last.WindowEnd)
	}
	if stats.DegradedWindows == 0 {
		t.Errorf("final stats report no degraded windows: %+v", stats)
	}
	if stats.Windows != uint64(len(wins)) {
		// The stream channel is lossy only under consumer stall, which
		// this test never induces; a mismatch means accounting drift.
		t.Errorf("stats.Windows = %d, received %d", stats.Windows, len(wins))
	}
}
