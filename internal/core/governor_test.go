package core

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scrub/internal/central"
	"scrub/internal/host"
	"scrub/internal/obs"
	"scrub/internal/transport"
)

// TestLocalGovernorDownsampleThenShed drives the whole budget loop end to
// end: a query with a 1-byte/sec BUDGET runs next to an identical
// unbudgeted sibling on two hosts. Every flush cycle ships at least a
// heartbeat (tens of bytes), so the budgeted query is over budget every
// enforcement interval and must walk the ladder deterministically — six
// rate halvings (1 → 1/64) and then a shed on the seventh interval —
// while the sibling never degrades. The agents run on a virtual clock
// advanced 1s per flush so the ladder does not depend on scheduler
// timing; events carry wall-clock timestamps so windows close normally.
func TestLocalGovernorDownsampleThenShed(t *testing.T) {
	base := time.Now()
	var step atomic.Int64 // whole seconds of virtual agent time
	clock := func() time.Time { return base.Add(time.Duration(step.Load()) * time.Second) }

	reg := obs.NewRegistry()
	lc, err := NewLocalCluster(LocalConfig{
		Catalog: testCatalog(),
		Hosts:   hostSpecs(2, "BidServers"),
		Agent: host.Config{
			FlushInterval: time.Hour, // only explicit FlushAgents cycles
			Clock:         clock,
			Metrics:       reg,
		},
		Central: central.Options{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	// sum(bid_price) rather than count(*): the Eq. 2 bound is driven by
	// the variance of the sampled readings, and count's readings are all
	// exactly 1 (variance 0 → bound legitimately 0). Varied prices give
	// the estimator real spread, so budget downsampling visibly widens
	// the bound.
	budgeted, err := lc.Query(`select sum(bid.bid_price) from bid budget bytes 1 window 1s duration 1m`)
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := lc.Query(`select count(*) from bid window 1s duration 1m`)
	if err != nil {
		t.Fatal(err)
	}

	// Eight enforcement intervals: 50 events per host per interval, then
	// one flush cycle per interval. Intervals 1–6 downsample, 7 sheds, 8
	// confirms the shed tracker stays quiet.
	const rounds, perRound = 8, 50
	logged := 0
	for round := 0; round < rounds; round++ {
		step.Add(1)
		for i, a := range lc.Agents() {
			for j := 0; j < perRound; j++ {
				price := 0.5 + float64(j%7)/7 // spread for the error bound
				logBid(t, a, uint64(1+i*10000+round*100+j), 7, price, time.Now())
			}
		}
		logged += 2 * perRound
		lc.FlushAgents()
	}

	for i, a := range lc.Agents() {
		st := a.Stats()
		if st.GovernorDownsamples != 6 || st.GovernorSheds != 1 || st.GovernorRecovers != 0 {
			t.Errorf("agent %d ladder = %d downsamples, %d recovers, %d sheds; want 6, 0, 1",
				i, st.GovernorDownsamples, st.GovernorRecovers, st.GovernorSheds)
		}
	}

	// Keep virtual time (and thus heartbeats) moving while wall-clock
	// window closing catches up, so liveness leases stay renewed and the
	// emitted windows reflect governor state, not lease expiry.
	stopPump := make(chan struct{})
	var pumpWG sync.WaitGroup
	pumpWG.Add(1)
	go func() {
		defer pumpWG.Done()
		for {
			select {
			case <-stopPump:
				return
			case <-time.After(50 * time.Millisecond):
				step.Add(1)
				lc.FlushAgents()
			}
		}
	}()
	defer func() { close(stopPump); pumpWG.Wait() }()

	waitWindow := func(name string, st *Stream) transport.ResultWindow {
		t.Helper()
		select {
		case rw, ok := <-st.Windows:
			if !ok {
				t.Fatalf("%s: stream closed without a window", name)
			}
			return rw
		case <-time.After(15 * time.Second):
			t.Fatalf("%s: no window within 15s", name)
		}
		panic("unreachable")
	}

	brw := waitWindow("budgeted", budgeted)
	if !brw.BudgetShed {
		t.Error("budgeted window not flagged BudgetShed")
	}
	if !brw.Approx {
		t.Error("budgeted window not Approx despite governor rate deviation")
	}
	if brw.Degraded {
		t.Error("budgeted window Degraded — leases should have stayed live")
	}
	if len(brw.ErrBounds) == 0 || math.IsNaN(brw.ErrBounds[0]) || brw.ErrBounds[0] <= 0 {
		t.Errorf("budgeted count bound = %v, want a positive bound", brw.ErrBounds)
	}
	sawShedStream := false
	for _, s := range brw.Streams {
		if s.BudgetShed {
			sawShedStream = true
			if want := 1.0 / 64; math.Abs(s.EffRate-want) > 1e-9 {
				t.Errorf("shed stream %s EffRate = %g, want %g", s.HostID, s.EffRate, want)
			}
			if s.Bytes == 0 {
				t.Errorf("shed stream %s reported zero shipped bytes", s.HostID)
			}
		}
	}
	if !sawShedStream {
		t.Errorf("no stream flagged BudgetShed in %+v", brw.Streams)
	}

	srw := waitWindow("sibling", sibling)
	if srw.BudgetShed || srw.Approx {
		t.Errorf("sibling window BudgetShed=%v Approx=%v, want false/false", srw.BudgetShed, srw.Approx)
	}

	// Drain both queries; the sibling must deliver every event exactly.
	if err := lc.Cancel(budgeted.Info.ID); err != nil {
		t.Fatal(err)
	}
	if err := lc.Cancel(sibling.Info.ID); err != nil {
		t.Fatal(err)
	}
	count := func(first transport.ResultWindow, st *Stream) float64 {
		total := 0.0
		sum := func(rw transport.ResultWindow) {
			for _, row := range rw.Rows {
				n, _ := row[0].AsFloat() // scaled counts render as floats
				total += n
			}
		}
		sum(first)
		for rw := range st.Windows {
			sum(rw)
		}
		return total
	}
	budgetedCount := count(brw, budgeted)
	siblingCount := count(srw, sibling)
	if siblingCount != float64(logged) {
		t.Errorf("sibling count = %g, want %d", siblingCount, logged)
	}
	// The budgeted query's estimate stays nonzero — interval 1 ran at
	// full rate before the ladder bit.
	if budgetedCount <= 0 {
		t.Errorf("budgeted count = %g, want > 0", budgetedCount)
	}

	bstats := budgeted.Final()
	if bstats.ShedWindows == 0 {
		t.Errorf("budgeted final ShedWindows = 0, want >= 1 (stats %+v)", bstats)
	}
	sstats := sibling.Final()
	if sstats.ShedWindows != 0 || sstats.DegradedWindows != 0 {
		t.Errorf("sibling final stats = %+v, want no shed/degraded windows", sstats)
	}

	// The same story must be visible on /metrics: one shed per host, and
	// at least one shed window at central.
	var sheds, shedWindows float64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "scrub_host_governor_sheds_total":
			sheds += s.Value
		case "scrub_central_shed_windows_total":
			shedWindows += s.Value
		}
	}
	if sheds != 2 {
		t.Errorf("scrub_host_governor_sheds_total sums to %g, want 2", sheds)
	}
	if shedWindows < 1 {
		t.Errorf("scrub_central_shed_windows_total = %g, want >= 1", shedWindows)
	}
}
