// Package core is Scrub's embedding and assembly layer: it wires the host
// agents, ScrubCentral, and the query server into a running system and
// exposes the two things a user touches — the application-side event API
// (define types, log events) and the troubleshooter-side query API
// (submit a query, stream windows).
//
// Two assemblies exist:
//
//   - LocalCluster runs everything in one process with direct calls —
//     the substrate for tests, benchmarks, and the simulator.
//   - NetCluster (net.go) runs the same components over real TCP — the
//     shape of a production deployment, used by the cmd/ binaries.
package core

import (
	"fmt"
	"sync"

	"scrub/internal/central"
	"scrub/internal/cluster"
	"scrub/internal/event"
	"scrub/internal/host"
	"scrub/internal/server"
	"scrub/internal/transport"
)

// HostSpec declares one simulated or real application host.
type HostSpec struct {
	Name    string
	Service string
	DC      string
}

// LocalConfig parametrizes a LocalCluster.
type LocalConfig struct {
	Catalog *event.Catalog
	Hosts   []HostSpec
	// Agent forwards host.Config tuning (queue size, batch size, flush
	// interval) to every agent.
	Agent host.Config
	// AgentSink, when set, replaces the default engine-backed sink for
	// every agent. Overhead measurements use an encode-and-discard sink
	// to model the paper's deployment, where ScrubCentral is a dedicated
	// remote facility whose work never lands on application hosts.
	AgentSink host.Sink
	// CentralShards runs ScrubCentral as a sharded cluster with this many
	// shards (the paper's "small ScrubCentral cluster"). 0 or 1 uses the
	// single-node engine.
	CentralShards int
	// Central tunes the engine's failure-domain behavior (stream lease
	// TTL, lease clock). Zero value is production defaults.
	Central central.Options
}

// LocalCluster is a complete single-process Scrub deployment: one agent
// per declared host, ScrubCentral, and the query server, connected by
// direct calls.
type LocalCluster struct {
	Catalog  *event.Catalog
	Registry *cluster.Registry
	Engine   central.Executor
	Server   *server.Server

	mu     sync.Mutex
	agents map[string]*host.Agent
	closed bool
}

// NewLocalCluster builds and starts the deployment.
func NewLocalCluster(cfg LocalConfig) (*LocalCluster, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("core: nil catalog")
	}
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("core: no hosts")
	}
	var engine central.Executor = central.NewEngineWith(cfg.Central)
	if cfg.CentralShards > 1 {
		se, err := central.NewShardedEngineWith(cfg.CentralShards, cfg.Central)
		if err != nil {
			return nil, err
		}
		engine = se
	}
	lc := &LocalCluster{
		Catalog:  cfg.Catalog,
		Registry: cluster.NewRegistry(),
		Engine:   engine,
		agents:   make(map[string]*host.Agent),
	}

	var sink host.Sink = host.SinkFunc(func(b transport.TupleBatch) error {
		lc.Engine.HandleBatch(b)
		return nil
	})
	if cfg.AgentSink != nil {
		sink = cfg.AgentSink
	}
	for _, h := range cfg.Hosts {
		if err := lc.Registry.Register(cluster.HostInfo{Name: h.Name, Service: h.Service, DC: h.DC}); err != nil {
			lc.Close()
			return nil, err
		}
		acfg := cfg.Agent
		acfg.HostID = h.Name
		acfg.Service = h.Service
		acfg.DC = h.DC
		acfg.Catalog = cfg.Catalog
		acfg.Sink = sink
		agent, err := host.New(acfg)
		if err != nil {
			lc.Close()
			return nil, err
		}
		lc.agents[h.Name] = agent
	}

	dispatcher := server.DispatcherFunc(func(hostName string, msg transport.Message) error {
		lc.mu.Lock()
		agent := lc.agents[hostName]
		lc.mu.Unlock()
		if agent == nil {
			return fmt.Errorf("core: unknown host %q", hostName)
		}
		switch m := msg.(type) {
		case transport.HostQuery:
			return agent.Start(m)
		case transport.StopQuery:
			agent.Stop(m.QueryID)
			return nil
		default:
			return fmt.Errorf("core: unexpected dispatch %s", transport.Name(msg))
		}
	})

	srv, err := server.New(server.Config{
		Catalog:    cfg.Catalog,
		Registry:   lc.Registry,
		Engine:     lc.Engine,
		Dispatcher: dispatcher,
	})
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.Server = srv
	return lc, nil
}

// Agent returns the agent embedded in the named host — the handle the
// "application" uses to log events.
func (lc *LocalCluster) Agent(name string) (*host.Agent, bool) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	a, ok := lc.agents[name]
	return a, ok
}

// Agents returns all agents.
func (lc *LocalCluster) Agents() []*host.Agent {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make([]*host.Agent, 0, len(lc.agents))
	for _, a := range lc.agents {
		out = append(out, a)
	}
	return out
}

// Stream is a running query's results, the in-process analogue of
// server.QueryStream.
type Stream struct {
	Info    server.QueryInfo
	Windows <-chan transport.ResultWindow

	mu    sync.Mutex
	stats transport.QueryStats
	done  chan struct{}
}

// Final blocks until the query ends and returns its statistics.
func (s *Stream) Final() transport.QueryStats {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Done reports completion without blocking.
func (s *Stream) Done() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Query submits query text and streams result windows until the span
// ends or Cancel is called.
func (lc *LocalCluster) Query(text string) (*Stream, error) {
	wins := make(chan transport.ResultWindow, 1024)
	st := &Stream{Windows: wins, done: make(chan struct{})}
	cb := server.Callbacks{
		Window: func(rw transport.ResultWindow) {
			select {
			case wins <- rw:
			default: // a stalled consumer loses windows, never blocks Scrub
			}
		},
		Done: func(d transport.QueryDone) {
			st.mu.Lock()
			st.stats = d.Stats
			st.mu.Unlock()
			close(wins)
			close(st.done)
		},
	}
	info, err := lc.Server.Submit(text, cb)
	if err != nil {
		return nil, err
	}
	st.Info = info
	return st, nil
}

// Cancel ends a running query early.
func (lc *LocalCluster) Cancel(id uint64) error { return lc.Server.Cancel(id) }

// FlushAgents pushes pending host batches through — a convenience for
// tests and simulations that want deterministic delivery points.
func (lc *LocalCluster) FlushAgents() {
	for _, a := range lc.Agents() {
		a.Flush()
	}
}

// Close tears the whole deployment down.
func (lc *LocalCluster) Close() {
	lc.mu.Lock()
	if lc.closed {
		lc.mu.Unlock()
		return
	}
	lc.closed = true
	agents := make([]*host.Agent, 0, len(lc.agents))
	for _, a := range lc.agents {
		agents = append(agents, a)
	}
	lc.mu.Unlock()
	if lc.Server != nil {
		lc.Server.Close()
	}
	for _, a := range agents {
		a.Close()
	}
}
