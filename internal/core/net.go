package core

import (
	"context"
	"fmt"
	"net"
	"time"

	"scrub/internal/central"
	"scrub/internal/cluster"
	"scrub/internal/event"
	"scrub/internal/host"
	"scrub/internal/server"
	"scrub/internal/transport"
)

// NetConfig parametrizes a NetCluster.
type NetConfig struct {
	Catalog *event.Catalog
	Hosts   []HostSpec
	// Listener addresses; empty means ephemeral loopback ports.
	ClientAddr  string
	ControlAddr string
	DataAddr    string
	// Agent defaults forwarded to every agent.
	Agent host.Config
	// Logf for hub diagnostics; nil silences them.
	Logf func(string, ...any)
	// CentralShards: see LocalConfig.CentralShards.
	CentralShards int
	// Central: see LocalConfig.Central.
	Central central.Options
	// Sink is the base option set for every host's data sink (dial
	// timeout, spill limit). Per-host wrapping and drop accounting are
	// filled in by the assembly.
	Sink host.NetSinkOptions
	// Control is the base option set for every agent's control loop
	// (dial timeout, reconnect backoff). The jitter seed is derived per
	// host; the dialer is wrapped per host when WrapConn is set.
	Control host.ControlOptions
	// WrapConn, when non-nil, interposes on every outbound connection a
	// host makes (control and data), keyed by host name — the
	// fault-injection seam. Wire it to chaos.Injector.Wrap.
	WrapConn func(hostName string, nc net.Conn) net.Conn
}

// NetCluster is a full Scrub deployment over real TCP in one process:
// the hub (client/control/data listeners), the query server with
// ScrubCentral, and one agent per host, each with its own control and
// data connections. It exercises exactly the paths a multi-machine
// deployment uses; cmd/scrubcentral and cmd/scrubd split the same pieces
// across processes.
type NetCluster struct {
	Catalog  *event.Catalog
	Registry *cluster.Registry
	Engine   central.Executor
	Server   *server.Server
	Hub      *server.Hub

	agents []*host.Agent
	sinks  []*host.NetSink
	cancel context.CancelFunc
}

// NewNetCluster builds, connects, and waits for every agent to register.
func NewNetCluster(cfg NetConfig) (*NetCluster, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("core: nil catalog")
	}
	if cfg.ClientAddr == "" {
		cfg.ClientAddr = "127.0.0.1:0"
	}
	if cfg.ControlAddr == "" {
		cfg.ControlAddr = "127.0.0.1:0"
	}
	if cfg.DataAddr == "" {
		cfg.DataAddr = "127.0.0.1:0"
	}

	registry := cluster.NewRegistry()
	hub, err := server.NewHub(registry, cfg.ClientAddr, cfg.ControlAddr, cfg.DataAddr)
	if err != nil {
		return nil, err
	}
	if cfg.Logf != nil {
		hub.SetLogf(cfg.Logf)
	} else {
		hub.SetLogf(func(string, ...any) {})
	}
	var engine central.Executor = central.NewEngineWith(cfg.Central)
	if cfg.CentralShards > 1 {
		se, err := central.NewShardedEngineWith(cfg.CentralShards, cfg.Central)
		if err != nil {
			hub.Close()
			return nil, err
		}
		engine = se
	}
	srv, err := server.New(server.Config{
		Catalog:    cfg.Catalog,
		Registry:   registry,
		Engine:     engine,
		Dispatcher: hub,
	})
	if err != nil {
		hub.Close()
		return nil, err
	}
	hub.SetServer(srv)
	hub.Serve()

	nc := &NetCluster{
		Catalog:  cfg.Catalog,
		Registry: registry,
		Engine:   engine,
		Server:   srv,
		Hub:      hub,
	}
	ctx, cancel := context.WithCancel(context.Background())
	nc.cancel = cancel

	for _, h := range cfg.Hosts {
		hostName := h.Name
		sopt := cfg.Sink
		copt := cfg.Control
		if cfg.WrapConn != nil {
			sopt.Wrap = func(raw net.Conn) net.Conn { return cfg.WrapConn(hostName, raw) }
			copt.Dial = func(addr string, timeout time.Duration) (*transport.Conn, error) {
				return transport.DialWith(addr, timeout, func(raw net.Conn) net.Conn {
					return cfg.WrapConn(hostName, raw)
				})
			}
		}
		sink := host.NewNetSinkWith(hub.DataAddr(), hostName, sopt)
		acfg := cfg.Agent
		acfg.HostID = hostName
		acfg.Service = h.Service
		acfg.DC = h.DC
		acfg.Catalog = cfg.Catalog
		acfg.Sink = sink
		agent, err := host.New(acfg)
		if err != nil {
			cancel()
			nc.Close()
			return nil, err
		}
		// Spill-buffer overflow lands in the agent's cumulative drop
		// counters, so central reports outage losses like queue drops.
		sink.SetDropAccounting(agent.AccountDrops)
		nc.agents = append(nc.agents, agent)
		nc.sinks = append(nc.sinks, sink)
		go func() { _ = agent.RunControlWith(ctx, hub.ControlAddr(), copt) }()
	}

	// Wait for registrations so queries submitted right away see their
	// targets.
	deadline := time.Now().Add(5 * time.Second)
	for registry.Len() < len(cfg.Hosts) {
		if time.Now().After(deadline) {
			nc.Close()
			return nil, fmt.Errorf("core: only %d/%d hosts registered", registry.Len(), len(cfg.Hosts))
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nc, nil
}

// Agent returns the i'th agent (creation order).
func (nc *NetCluster) Agent(i int) *host.Agent { return nc.agents[i] }

// NumAgents returns the agent count.
func (nc *NetCluster) NumAgents() int { return len(nc.agents) }

// Client opens a troubleshooter connection to the cluster.
func (nc *NetCluster) Client() (*server.Client, error) {
	return server.DialClient(nc.Hub.ClientAddr())
}

// Close tears everything down.
func (nc *NetCluster) Close() {
	if nc.cancel != nil {
		nc.cancel()
	}
	if nc.Server != nil {
		nc.Server.Close()
	}
	for _, a := range nc.agents {
		a.Close()
	}
	for _, s := range nc.sinks {
		s.Close()
	}
	if nc.Hub != nil {
		nc.Hub.Close()
	}
}
