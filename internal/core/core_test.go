package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"scrub/internal/event"
	"scrub/internal/host"
)

func testCatalog() *event.Catalog {
	cat := event.NewCatalog()
	cat.MustRegister(event.MustSchema("bid",
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
		event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
	))
	cat.MustRegister(event.MustSchema("exclusion",
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
		event.FieldDef{Name: "reason", Kind: event.KindString},
	))
	return cat
}

func hostSpecs(n int, service string) []HostSpec {
	out := make([]HostSpec, n)
	for i := range out {
		out[i] = HostSpec{Name: fmt.Sprintf("%s-%d", strings.ToLower(service), i), Service: service, DC: "DC1"}
	}
	return out
}

func fastAgent() host.Config {
	return host.Config{FlushInterval: 5 * time.Millisecond}
}

func newLocal(t *testing.T, hosts []HostSpec) *LocalCluster {
	t.Helper()
	lc, err := NewLocalCluster(LocalConfig{Catalog: testCatalog(), Hosts: hosts, Agent: fastAgent()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc
}

func logBid(t *testing.T, a *host.Agent, req uint64, user int64, price float64, ts time.Time) {
	t.Helper()
	s, _ := a.Catalog().Lookup("bid")
	a.Log(event.NewBuilder(s).
		SetRequestID(req).SetTime(ts).
		Int("user_id", user).Int("exchange_id", 1).Float("bid_price", price).
		MustBuild())
}

func TestLocalClusterValidation(t *testing.T) {
	if _, err := NewLocalCluster(LocalConfig{}); err == nil {
		t.Error("nil catalog should fail")
	}
	if _, err := NewLocalCluster(LocalConfig{Catalog: testCatalog()}); err == nil {
		t.Error("no hosts should fail")
	}
}

func TestLocalEndToEndGroupedCount(t *testing.T) {
	lc := newLocal(t, hostSpecs(3, "BidServers"))
	st, err := lc.Query(`select bid.user_id, count(*) from bid group by bid.user_id window 1s duration 2s @[Service in BidServers]`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Info.NumHosts != 3 || st.Info.SampledHosts != 3 {
		t.Fatalf("info = %+v", st.Info)
	}
	now := time.Now()
	for i, a := range lc.Agents() {
		for j := 0; j < 5; j++ {
			logBid(t, a, uint64(i*100+j), int64(7), 1.0, now)
		}
	}
	// Collect until done (span 2s).
	total := int64(0)
	for rw := range st.Windows {
		for _, row := range rw.Rows {
			if row[0].String() == "7" {
				n, _ := row[1].AsInt()
				total += n
			}
		}
	}
	if total != 15 {
		t.Errorf("total count = %d, want 15", total)
	}
	stats := st.Final()
	if stats.TuplesIn != 15 {
		t.Errorf("final stats = %+v", stats)
	}
	if len(lc.Server.Active()) != 0 {
		t.Error("query still active after span")
	}
	// Agents must be clean too.
	for _, a := range lc.Agents() {
		if len(a.ActiveQueries()) != 0 {
			t.Error("agent still has active queries")
		}
	}
}

func TestLocalTargetSpecLimitsHosts(t *testing.T) {
	hosts := append(hostSpecs(2, "BidServers"), hostSpecs(2, "AdServers")...)
	lc := newLocal(t, hosts)
	st, err := lc.Query(`select count(*) from bid window 1s duration 1s @[Service in AdServers]`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Info.NumHosts != 2 {
		t.Errorf("NumHosts = %d, want 2", st.Info.NumHosts)
	}
	// Log on a BidServer — not targeted, must not count.
	a, _ := lc.Agent("bidservers-0")
	logBid(t, a, 1, 1, 1, time.Now())
	var total int64
	for rw := range st.Windows {
		for _, row := range rw.Rows {
			n, _ := row[0].AsInt()
			total += n
		}
	}
	if total != 0 {
		t.Errorf("untargeted host contributed %d", total)
	}
}

func TestLocalQueryRejection(t *testing.T) {
	lc := newLocal(t, hostSpecs(1, "BidServers"))
	cases := []string{
		`select count(*) from ghost`,
		`select cnt(*) from bid`,
		`select count(*) from bid @[Service in NoSuch]`,
		`totally not a query`,
	}
	for _, src := range cases {
		if _, err := lc.Query(src); err == nil {
			t.Errorf("Query(%q) should fail", src)
		}
	}
}

func TestLocalCancel(t *testing.T) {
	lc := newLocal(t, hostSpecs(1, "BidServers"))
	st, err := lc.Query(`select count(*) from bid window 1s duration 1h`)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := lc.Agent("bidservers-0")
	logBid(t, a, 1, 1, 1, time.Now())
	lc.FlushAgents() // ensure the tuple reaches central before cancel
	if err := lc.Cancel(st.Info.ID); err != nil {
		t.Fatal(err)
	}
	stats := st.Final()
	if stats.TuplesIn != 1 {
		t.Errorf("cancelled stats = %+v", stats)
	}
	if err := lc.Cancel(st.Info.ID); err == nil {
		t.Error("double cancel should fail")
	}
}

func TestLocalHostSampling(t *testing.T) {
	lc := newLocal(t, hostSpecs(10, "BidServers"))
	st, err := lc.Query(`select count(*) from bid window 1s duration 1s sample hosts 30%`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Info.SampledHosts != 3 || st.Info.NumHosts != 10 {
		t.Errorf("sampled %d of %d", st.Info.SampledHosts, st.Info.NumHosts)
	}
	// Only sampled hosts have the query installed.
	installed := 0
	for _, a := range lc.Agents() {
		if len(a.ActiveQueries()) == 1 {
			installed++
		}
	}
	if installed != 3 {
		t.Errorf("query installed on %d hosts, want 3", installed)
	}
	st.Final()
}

func TestLocalScaledCountWithSampling(t *testing.T) {
	lc := newLocal(t, hostSpecs(4, "BidServers"))
	st, err := lc.Query(`select count(*) from bid window 1s duration 2s sample hosts 50%`)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i, a := range lc.Agents() {
		for j := 0; j < 100; j++ {
			logBid(t, a, uint64(i*1000+j), 1, 1, now)
		}
	}
	var got int64
	approx := false
	for rw := range st.Windows {
		approx = approx || rw.Approx
		for _, row := range rw.Rows {
			n, _ := row[0].AsInt()
			got += n
		}
	}
	if !approx {
		t.Error("host-sampled query should be approximate")
	}
	// 2 hosts × 100 events × factor 2 = 400 — exact here because every
	// sampled host contributes identically.
	if got != 400 {
		t.Errorf("scaled count = %d, want 400", got)
	}
}

func TestLocalJoinEndToEnd(t *testing.T) {
	hosts := append(hostSpecs(1, "BidServers"), hostSpecs(1, "AdServers")...)
	lc := newLocal(t, hosts)
	st, err := lc.Query(`select exclusion.reason, count(*) from bid, exclusion group by exclusion.reason window 1s duration 2s`)
	if err != nil {
		t.Fatal(err)
	}
	bidAgent, _ := lc.Agent("bidservers-0")
	adAgent, _ := lc.Agent("adservers-0")
	exSchema, _ := lc.Catalog.Lookup("exclusion")
	now := time.Now()
	for req := uint64(1); req <= 3; req++ {
		logBid(t, bidAgent, req, 1, 1, now)
		adAgent.Log(event.NewBuilder(exSchema).
			SetRequestID(req).SetTime(now).
			Int("line_item_id", 9).Str("reason", "budget").
			MustBuild())
	}
	counts := map[string]int64{}
	for rw := range st.Windows {
		for _, row := range rw.Rows {
			n, _ := row[1].AsInt()
			counts[row[0].String()] += n
		}
	}
	if counts["budget"] != 3 {
		t.Errorf("join counts = %v", counts)
	}
}

func TestStreamDoneNonBlocking(t *testing.T) {
	lc := newLocal(t, hostSpecs(1, "BidServers"))
	st, err := lc.Query(`select count(*) from bid window 1s duration 1s`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done() {
		t.Error("fresh query should not be done")
	}
	st.Final()
	if !st.Done() {
		t.Error("finished query should be done")
	}
}

// --- TCP (NetCluster) integration ---

func TestNetClusterEndToEnd(t *testing.T) {
	nc, err := NewNetCluster(NetConfig{
		Catalog: testCatalog(),
		Hosts:   hostSpecs(3, "BidServers"),
		Agent:   fastAgent(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	client, err := nc.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	qs, err := client.Query(`select bid.user_id, count(*) from bid group by bid.user_id window 1s duration 2s`)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Info.NumHosts != 3 {
		t.Errorf("NumHosts = %d", qs.Info.NumHosts)
	}
	if len(qs.Info.Columns) != 2 {
		t.Errorf("columns = %v", qs.Info.Columns)
	}

	// Query objects propagate asynchronously over TCP; wait until every
	// agent has activated before generating events (events logged before
	// activation are simply not captured — by design).
	waitInstalled := time.Now().Add(5 * time.Second)
	for {
		installed := 0
		for i := 0; i < nc.NumAgents(); i++ {
			if len(nc.Agent(i).ActiveQueries()) > 0 {
				installed++
			}
		}
		if installed == nc.NumAgents() {
			break
		}
		if time.Now().After(waitInstalled) {
			t.Fatalf("query installed on %d/%d agents", installed, nc.NumAgents())
		}
		time.Sleep(2 * time.Millisecond)
	}

	now := time.Now()
	schema, _ := nc.Catalog.Lookup("bid")
	for i := 0; i < nc.NumAgents(); i++ {
		a := nc.Agent(i)
		for j := 0; j < 10; j++ {
			a.Log(event.NewBuilder(schema).
				SetRequestID(uint64(i*100+j)).SetTime(now).
				Int("user_id", 42).Int("exchange_id", 1).Float("bid_price", 1).
				MustBuild())
		}
	}
	var total int64
	for rw := range qs.Windows {
		for _, row := range rw.Rows {
			if row[0].String() == "42" {
				n, _ := row[1].AsInt()
				total += n
			}
		}
	}
	if total != 30 {
		t.Errorf("tcp total = %d, want 30", total)
	}
	stats, err := qs.Final()
	if err != nil {
		t.Fatal(err)
	}
	if stats.TuplesIn != 30 {
		t.Errorf("final = %+v", stats)
	}
}

func TestNetClusterQueryRejected(t *testing.T) {
	nc, err := NewNetCluster(NetConfig{
		Catalog: testCatalog(),
		Hosts:   hostSpecs(1, "BidServers"),
		Agent:   fastAgent(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	client, err := nc.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Query(`select wat(*) from bid`); err == nil {
		t.Error("bad query should be rejected over TCP")
	}
	// Client is reusable after a rejection.
	qs, err := client.Query(`select count(*) from bid window 1s duration 1s`)
	if err != nil {
		t.Fatal(err)
	}
	for range qs.Windows {
	}
	if _, err := qs.Final(); err != nil {
		t.Fatal(err)
	}
}

func TestNetClusterCancel(t *testing.T) {
	nc, err := NewNetCluster(NetConfig{
		Catalog: testCatalog(),
		Hosts:   hostSpecs(1, "BidServers"),
		Agent:   fastAgent(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	client, err := nc.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	qs, err := client.Query(`select count(*) from bid window 1s duration 1h`)
	if err != nil {
		t.Fatal(err)
	}
	if err := qs.Cancel(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	donech := make(chan struct{})
	go func() {
		for range qs.Windows {
		}
		close(donech)
	}()
	select {
	case <-donech:
	case <-deadline:
		t.Fatal("cancel did not end the stream")
	}
}

func TestLocalClusterShardedCentral(t *testing.T) {
	lc, err := NewLocalCluster(LocalConfig{
		Catalog:       testCatalog(),
		Hosts:         hostSpecs(3, "BidServers"),
		Agent:         fastAgent(),
		CentralShards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	st, err := lc.Query(`select bid.user_id, count(*) from bid group by bid.user_id window 1s duration 2s`)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i, a := range lc.Agents() {
		for j := 0; j < 20; j++ {
			logBid(t, a, uint64(i*100+j), int64(j%4), 1.0, now)
		}
	}
	counts := map[string]int64{}
	for rw := range st.Windows {
		for _, row := range rw.Rows {
			n, _ := row[1].AsInt()
			counts[row[0].String()] += n
		}
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	if total != 60 {
		t.Errorf("sharded total = %d, want 60 (counts %v)", total, counts)
	}
	if len(counts) != 4 {
		t.Errorf("groups = %v", counts)
	}
	stats := st.Final()
	if stats.TuplesIn != 60 {
		t.Errorf("final stats = %+v", stats)
	}
}

func TestNetClusterShardedCentral(t *testing.T) {
	nc, err := NewNetCluster(NetConfig{
		Catalog:       testCatalog(),
		Hosts:         hostSpecs(2, "BidServers"),
		Agent:         fastAgent(),
		CentralShards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	client, err := nc.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	qs, err := client.Query(`select count(*) from bid window 1s duration 2s`)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for activation (async over TCP), then log.
	deadline := time.Now().Add(5 * time.Second)
	for {
		active := 0
		for i := 0; i < nc.NumAgents(); i++ {
			if len(nc.Agent(i).ActiveQueries()) > 0 {
				active++
			}
		}
		if active == nc.NumAgents() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("activation timeout")
		}
		time.Sleep(2 * time.Millisecond)
	}
	schema, _ := nc.Catalog.Lookup("bid")
	now := time.Now()
	for i := 0; i < nc.NumAgents(); i++ {
		for j := 0; j < 10; j++ {
			nc.Agent(i).Log(event.NewBuilder(schema).
				SetRequestID(uint64(i*100+j+1)).SetTime(now).
				Int("user_id", 1).Int("exchange_id", 1).Float("bid_price", 1).
				MustBuild())
		}
	}
	var total int64
	for rw := range qs.Windows {
		for _, row := range rw.Rows {
			n, _ := row[0].AsInt()
			total += n
		}
	}
	if total != 20 {
		t.Errorf("sharded TCP total = %d, want 20", total)
	}
	if _, err := qs.Final(); err != nil {
		t.Fatal(err)
	}
}
