// Package chaos is a deterministic, seedable fault-injection layer for
// Scrub's transport connections. It wraps raw net.Conns at the byte
// level but understands the transport's length-prefixed framing on the
// write path, so faults operate on whole protocol frames — a dropped
// frame is one lost message, not a truncated stream that would desync
// the peer's decoder (real networks lose packets; TCP either delivers
// the frame or kills the connection, and chaos reproduces both).
//
// Faults compose per host and change live: an Injector holds the
// current Faults for each host, every wrapped connection consults it on
// each operation, and a Schedule flips fault sets at fixed offsets for
// scripted failure scenarios. All randomness flows from the Injector's
// seed through per-connection RNGs, so a scenario replays identically
// under the same seed, wiring, and send order.
package chaos

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// maxFrame mirrors transport.MaxFrame without importing it: a parsed
// length above this means the stream is not Scrub framing, and the
// writer falls back to passing bytes through untouched.
const maxFrame = 16 << 20

// Faults is one host's active fault set. The zero value is a healthy
// link. Probabilities are per frame in [0, 1].
type Faults struct {
	// DropProb silently discards a written frame.
	DropProb float64
	// DupProb writes a frame twice back to back.
	DupProb float64
	// ReorderProb holds a frame and releases it after the next one, so
	// adjacent frames swap on the wire.
	ReorderProb float64
	// DelayMin/DelayMax sleep a uniform duration in [min, max] before
	// each frame is written (link latency and jitter).
	DelayMin, DelayMax time.Duration
	// PartitionSend blackholes writes: the application keeps sending,
	// nothing arrives, the connection stays up. One-way partition.
	PartitionSend bool
	// PartitionRecv stalls reads until the partition heals or the
	// connection closes. The other half of a full partition.
	PartitionRecv bool
	// ReadBytesPerSec throttles the read path to model a slow reader /
	// congested link. 0 is unthrottled.
	ReadBytesPerSec int
}

// Partitioned is the full two-way partition fault set.
func Partitioned() Faults { return Faults{PartitionSend: true, PartitionRecv: true} }

// Injector owns per-host fault state and tracks the live connections it
// has wrapped, so partitions flip atomically for every connection of a
// host and Kill can sever them abruptly.
type Injector struct {
	seed int64

	mu     sync.Mutex
	faults map[string]Faults
	conns  map[string]map[*conn]struct{}
	nconns uint64
}

// New creates an injector. The same seed replays the same fault
// decisions given the same wiring and send order.
func New(seed int64) *Injector {
	return &Injector{
		seed:   seed,
		faults: make(map[string]Faults),
		conns:  make(map[string]map[*conn]struct{}),
	}
}

// Set installs a host's fault set, replacing any previous one. It
// applies immediately to live connections.
func (inj *Injector) Set(host string, f Faults) {
	inj.mu.Lock()
	inj.faults[host] = f
	inj.mu.Unlock()
}

// Heal removes a host's faults; its links behave normally again.
func (inj *Injector) Heal(host string) {
	inj.mu.Lock()
	delete(inj.faults, host)
	inj.mu.Unlock()
}

// Kill abruptly closes every live wrapped connection of the host —
// a process crash rather than a network fault — and reports how many it
// severed. The host's fault set is untouched, so a reconnecting client
// comes back into whatever conditions are scheduled.
func (inj *Injector) Kill(host string) int {
	inj.mu.Lock()
	var victims []*conn
	for c := range inj.conns[host] {
		victims = append(victims, c)
	}
	inj.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	return len(victims)
}

// faultsFor snapshots a host's current fault set.
func (inj *Injector) faultsFor(host string) Faults {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.faults[host]
}

// Wrap interposes on nc for the given host. Pass the result wherever a
// net.Conn is expected; transport framing layers on top untouched.
func (inj *Injector) Wrap(host string, nc net.Conn) net.Conn {
	inj.mu.Lock()
	inj.nconns++
	h := fnv.New64a()
	h.Write([]byte(host))
	seed := inj.seed ^ int64(h.Sum64()) ^ int64(inj.nconns*0x9e3779b97f4a7c15)
	c := &conn{
		nc:     nc,
		inj:    inj,
		host:   host,
		rng:    rand.New(rand.NewSource(seed)),
		closed: make(chan struct{}),
	}
	set := inj.conns[host]
	if set == nil {
		set = make(map[*conn]struct{})
		inj.conns[host] = set
	}
	set[c] = struct{}{}
	inj.mu.Unlock()
	return c
}

// Wrapper returns a single-host wrap function in the shape transport
// dial seams accept (host.NetSinkOptions.Wrap, transport.DialWith).
func (inj *Injector) Wrapper(host string) func(net.Conn) net.Conn {
	return func(nc net.Conn) net.Conn { return inj.Wrap(host, nc) }
}

// conn is one wrapped connection. The write path reassembles transport
// frames from arbitrary Write chunks and applies faults per frame; the
// read path applies partition stalls and throttling to raw bytes.
type conn struct {
	nc   net.Conn
	inj  *Injector
	host string

	wmu  sync.Mutex // guards rng, wbuf, held (Write path; rng is write-only state)
	rng  *rand.Rand
	wbuf []byte // bytes awaiting a complete frame
	held []byte // frame held back for reordering

	closeOnce sync.Once
	closed    chan struct{}
}

// Write implements net.Conn. It reports the full length as written even
// when frames are blackholed or dropped — from the sender's perspective
// a lossy network accepts the bytes just fine.
func (c *conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = append(c.wbuf, p...)
	for {
		if len(c.wbuf) < 4 {
			break
		}
		n := binary.LittleEndian.Uint32(c.wbuf[:4])
		if n == 0 || n > maxFrame {
			// Not Scrub framing; stop interposing and pass through.
			if err := c.flushRawLocked(); err != nil {
				return 0, err
			}
			break
		}
		total := 4 + int(n)
		if len(c.wbuf) < total {
			break
		}
		frame := c.wbuf[:total]
		if err := c.writeFrameLocked(frame); err != nil {
			return 0, err
		}
		c.wbuf = c.wbuf[total:]
	}
	if len(c.wbuf) == 0 {
		c.wbuf = nil
	}
	return len(p), nil
}

func (c *conn) flushRawLocked() error {
	_, err := c.nc.Write(c.wbuf)
	c.wbuf = nil
	return err
}

// writeFrameLocked applies the host's current faults to one frame. The
// RNG draws happen in a fixed order per frame regardless of which
// faults are enabled, so enabling one fault does not shift the random
// stream consumed by another — scenarios stay comparable across runs.
func (c *conn) writeFrameLocked(frame []byte) error {
	f := c.inj.faultsFor(c.host)
	drop := f.DropProb > 0 && c.rng.Float64() < f.DropProb
	dup := f.DupProb > 0 && c.rng.Float64() < f.DupProb
	reorder := f.ReorderProb > 0 && c.rng.Float64() < f.ReorderProb
	if d := f.DelayMax; d > 0 && d >= f.DelayMin {
		span := int64(d - f.DelayMin)
		sleep := f.DelayMin
		if span > 0 {
			sleep += time.Duration(c.rng.Int63n(span + 1))
		}
		time.Sleep(sleep)
	}
	if f.PartitionSend || drop {
		c.held = c.releaseHeldLocked(f)
		return nil // blackholed; held frame dies with the partition
	}
	if held := c.releaseHeldLocked(f); held != nil {
		// A frame was waiting: send the new one first, then the held one —
		// the two swap on the wire.
		if err := c.sendLocked(frame, dup, f); err != nil {
			return err
		}
		return c.sendLocked(held, false, f)
	}
	if reorder {
		c.held = append([]byte(nil), frame...)
		return nil
	}
	return c.sendLocked(frame, dup, f)
}

// releaseHeldLocked takes the held frame, dropping it outright when the
// link is partitioned (a held frame is in-flight data; partitions eat
// in-flight data).
func (c *conn) releaseHeldLocked(f Faults) []byte {
	held := c.held
	c.held = nil
	if f.PartitionSend {
		return nil
	}
	return held
}

func (c *conn) sendLocked(frame []byte, dup bool, f Faults) error {
	if _, err := c.nc.Write(frame); err != nil {
		return err
	}
	if dup {
		if _, err := c.nc.Write(frame); err != nil {
			return err
		}
	}
	return nil
}

// Read implements net.Conn: a receive partition stalls (polling so a
// heal resumes the stream), and a throttle paces delivered bytes.
func (c *conn) Read(p []byte) (int, error) {
	for {
		f := c.inj.faultsFor(c.host)
		if !f.PartitionRecv {
			if f.ReadBytesPerSec > 0 && len(p) > f.ReadBytesPerSec/10 {
				p = p[:f.ReadBytesPerSec/10+1]
			}
			n, err := c.nc.Read(p)
			if n > 0 && f.ReadBytesPerSec > 0 {
				time.Sleep(time.Duration(float64(n) / float64(f.ReadBytesPerSec) * float64(time.Second)))
			}
			return n, err
		}
		select {
		case <-c.closed:
			return 0, io.ErrClosedPipe
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Close implements net.Conn and untracks the connection.
func (c *conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		c.inj.mu.Lock()
		if set := c.inj.conns[c.host]; set != nil {
			delete(set, c)
		}
		c.inj.mu.Unlock()
		err = c.nc.Close()
	})
	return err
}

func (c *conn) LocalAddr() net.Addr                { return c.nc.LocalAddr() }
func (c *conn) RemoteAddr() net.Addr               { return c.nc.RemoteAddr() }
func (c *conn) SetDeadline(t time.Time) error      { return c.nc.SetDeadline(t) }
func (c *conn) SetReadDeadline(t time.Time) error  { return c.nc.SetReadDeadline(t) }
func (c *conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// Step is one scheduled fault transition.
type Step struct {
	// At is the offset from the start of Run.
	At time.Duration
	// Host names the target stream.
	Host string
	// Faults installs this set at the offset; nil heals the host.
	Faults *Faults
	// Kill severs the host's live connections at the offset (after the
	// fault change, so Kill+Partitioned models a crashed host whose
	// reconnects also fail).
	Kill bool
}

// Schedule applies steps at their offsets until all have run or done is
// closed. It sorts a copy of steps by offset, so callers can list them
// in narrative order. Run it in its own goroutine for live scenarios.
func (inj *Injector) Schedule(done <-chan struct{}, steps []Step) {
	ordered := append([]Step(nil), steps...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	start := time.Now()
	for _, s := range ordered {
		wait := s.At - time.Since(start)
		if wait > 0 {
			select {
			case <-done:
				return
			case <-time.After(wait):
			}
		} else {
			select {
			case <-done:
				return
			default:
			}
		}
		if s.Faults != nil {
			inj.Set(s.Host, *s.Faults)
		} else {
			inj.Heal(s.Host)
		}
		if s.Kill {
			inj.Kill(s.Host)
		}
	}
}

// String renders a fault set compactly for logs.
func (f Faults) String() string {
	return fmt.Sprintf("drop=%.2f dup=%.2f reorder=%.2f delay=[%s,%s] partSend=%v partRecv=%v throttle=%dB/s",
		f.DropProb, f.DupProb, f.ReorderProb, f.DelayMin, f.DelayMax, f.PartitionSend, f.PartitionRecv, f.ReadBytesPerSec)
}
