package chaos

import (
	"testing"
	"time"

	"scrub/internal/transport"
)

// chaosPipe builds a transport conn pair with the client side wrapped by
// the injector under the given host name.
func chaosPipe(t *testing.T, inj *Injector, host string) (client, server *transport.Conn) {
	t.Helper()
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan *transport.Conn, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()
	c, err := transport.DialWith(l.Addr(), time.Second, inj.Wrapper(host))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	select {
	case s := <-accepted:
		t.Cleanup(func() { s.Close() })
		return c, s
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
		return nil, nil
	}
}

// recvNonces drains messages until the deadline or an error, returning
// received Ping nonces in order.
func recvNonces(s *transport.Conn, n int, deadline time.Duration) []uint64 {
	var out []uint64
	s.SetReadDeadline(time.Now().Add(deadline))
	for len(out) < n {
		msg, err := s.Recv()
		if err != nil {
			break
		}
		if p, ok := msg.(transport.Ping); ok {
			out = append(out, p.Nonce)
		}
	}
	return out
}

func TestCleanLinkPassesThrough(t *testing.T) {
	inj := New(1)
	c, s := chaosPipe(t, inj, "h1")
	for i := uint64(1); i <= 20; i++ {
		if err := c.Send(transport.Ping{Nonce: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := recvNonces(s, 20, 2*time.Second)
	if len(got) != 20 {
		t.Fatalf("received %d/20 through a healthy link", len(got))
	}
	for i, n := range got {
		if n != uint64(i+1) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestDropIsDeterministic(t *testing.T) {
	run := func(seed int64) []uint64 {
		inj := New(seed)
		inj.Set("h1", Faults{DropProb: 0.5})
		c, s := chaosPipe(t, inj, "h1")
		for i := uint64(1); i <= 50; i++ {
			if err := c.Send(transport.Ping{Nonce: i}); err != nil {
				t.Fatal(err)
			}
		}
		return recvNonces(s, 50, 500*time.Millisecond)
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 50 {
		t.Fatalf("drop 0.5 delivered %d/50 — fault not applied", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical delivery (suspicious RNG wiring)")
	}
}

func TestDuplicateAndReorder(t *testing.T) {
	inj := New(7)
	inj.Set("dup", Faults{DupProb: 1})
	c, s := chaosPipe(t, inj, "dup")
	for i := uint64(1); i <= 3; i++ {
		if err := c.Send(transport.Ping{Nonce: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := recvNonces(s, 6, 2*time.Second)
	want := []uint64{1, 1, 2, 2, 3, 3}
	if len(got) != len(want) {
		t.Fatalf("dup=1 delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dup=1 delivered %v, want %v", got, want)
		}
	}

	inj2 := New(7)
	inj2.Set("ro", Faults{ReorderProb: 1})
	c2, s2 := chaosPipe(t, inj2, "ro")
	for i := uint64(1); i <= 4; i++ {
		if err := c2.Send(transport.Ping{Nonce: i}); err != nil {
			t.Fatal(err)
		}
	}
	got2 := recvNonces(s2, 4, 2*time.Second)
	want2 := []uint64{2, 1, 4, 3} // adjacent swaps
	if len(got2) != len(want2) {
		t.Fatalf("reorder=1 delivered %v, want %v", got2, want2)
	}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatalf("reorder=1 delivered %v, want %v", got2, want2)
		}
	}
}

func TestPartitionAndHeal(t *testing.T) {
	inj := New(3)
	c, s := chaosPipe(t, inj, "h1")

	if err := c.Send(transport.Ping{Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	if got := recvNonces(s, 1, 2*time.Second); len(got) != 1 {
		t.Fatal("pre-partition message lost")
	}

	// Partition: sends succeed at the application, nothing arrives.
	inj.Set("h1", Partitioned())
	for i := uint64(2); i <= 5; i++ {
		if err := c.Send(transport.Ping{Nonce: i}); err != nil {
			t.Fatalf("send during partition must not error at the sender: %v", err)
		}
	}
	if got := recvNonces(s, 1, 300*time.Millisecond); len(got) != 0 {
		t.Fatalf("partitioned link delivered %v", got)
	}

	// Heal: the partition ate in-flight frames, but new sends flow.
	inj.Heal("h1")
	if err := c.Send(transport.Ping{Nonce: 6}); err != nil {
		t.Fatal(err)
	}
	got := recvNonces(s, 1, 2*time.Second)
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("post-heal delivery = %v, want [6]", got)
	}
}

func TestKillSeversConnections(t *testing.T) {
	inj := New(9)
	c, _ := chaosPipe(t, inj, "h1")
	if n := inj.Kill("h1"); n != 1 {
		t.Fatalf("Kill severed %d conns, want 1", n)
	}
	// The transport layer surfaces the abrupt close as a send error
	// (possibly not the very first send, depending on buffering).
	var failed bool
	for i := 0; i < 10; i++ {
		if err := c.Send(transport.Ping{Nonce: 99}); err != nil {
			failed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !failed {
		t.Fatal("sends kept succeeding on a killed connection")
	}
	if n := inj.Kill("h1"); n != 0 {
		t.Fatalf("second Kill found %d conns, want 0", n)
	}
}

func TestScheduleAppliesSteps(t *testing.T) {
	inj := New(5)
	done := make(chan struct{})
	defer close(done)
	go inj.Schedule(done, []Step{
		{At: 0, Host: "h1", Faults: &Faults{PartitionSend: true}},
		{At: 30 * time.Millisecond, Host: "h1"}, // heal
	})
	deadline := time.Now().Add(2 * time.Second)
	for !inj.faultsFor("h1").PartitionSend {
		if time.Now().After(deadline) {
			t.Fatal("step 1 never applied")
		}
		time.Sleep(time.Millisecond)
	}
	for inj.faultsFor("h1").PartitionSend {
		if time.Now().After(deadline) {
			t.Fatal("heal step never applied")
		}
		time.Sleep(time.Millisecond)
	}
}
