package difftest

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"scrub/internal/central"
	"scrub/internal/event"
	"scrub/internal/host"
	"scrub/internal/ql"
	"scrub/internal/replay"
	"scrub/internal/transport"
)

// The replay-equivalence contract: a query submitted AFTER a burst, with
// a REPLAY span covering it, must produce bit-identical results to the
// same query submitted BEFORE the burst — same windows, same rows, same
// accounting. The whole pipeline runs for real in both arms: host.Agent
// (recording in the replay arm), chunked shipping, central.Engine.

const replayEquivSeed = 7 // pinned: regenerating the burst is deterministic

var replayBidSchema = event.MustSchema("bid",
	event.FieldDef{Name: "user_id", Kind: event.KindInt},
	event.FieldDef{Name: "city", Kind: event.KindString},
	event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
)

func replayCatalog() *event.Catalog {
	c := event.NewCatalog()
	c.MustRegister(replayBidSchema)
	return c
}

// replayBurst generates the pinned event burst: ~30s of bids starting at
// base, in strictly increasing time order (the record stream preserves
// append order, so both arms see one canonical sequence).
func replayBurst(base int64) []*event.Event {
	rng := rand.New(rand.NewSource(replayEquivSeed))
	cities := []string{"sf", "la", "ny"}
	out := make([]*event.Event, 0, 400)
	ts := base
	for i := 0; i < 400; i++ {
		ts += int64(rng.Intn(150)+1) * int64(time.Millisecond)
		out = append(out, event.NewBuilder(replayBidSchema).
			SetRequestID(uint64(i+1)).
			SetTimeNanos(ts).
			Int("user_id", int64(rng.Intn(5))).
			Str("city", cities[rng.Intn(len(cities))]).
			Float("bid_price", rng.Float64()*2).
			MustBuild())
	}
	return out
}

// replaySink gathers shipped batches in arrival order.
type replaySink struct {
	mu      sync.Mutex
	batches []transport.TupleBatch
}

func (s *replaySink) SendBatch(b transport.TupleBatch) error {
	cp := transport.CloneBatch(b)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches = append(s.batches, cp)
	return nil
}

func (s *replaySink) all() []transport.TupleBatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]transport.TupleBatch, len(s.batches))
	copy(out, s.batches)
	return out
}

func (s *replaySink) waitDone(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, b := range s.all() {
			if b.ReplayDone {
				return true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// runReplayArm executes one arm of the experiment end to end and returns
// the emitted windows plus the final query stats.
//
// before=true submits the query first and logs the burst live; before=
// false records the burst with no query active, then submits the query
// with a REPLAY span covering it.
func runReplayArm(t *testing.T, queryText string, events []*event.Event, base int64, before bool) ([]transport.ResultWindow, transport.QueryStats) {
	t.Helper()
	cat := replayCatalog()
	q, err := ql.Parse(queryText)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ql.Analyze(q, cat)
	if err != nil {
		t.Fatal(err)
	}

	// The live arm starts at the burst; the replay arm starts 40s later
	// and replays the missed history. Either way the data partition the
	// query accepts is [base, end).
	start := base
	var replaySpan time.Duration
	if !before {
		replaySpan = 40 * time.Second
		start = base + int64(replaySpan)
	}
	end := start + int64(10*time.Minute)

	var rs *replay.Store
	if !before {
		rs, err = replay.Open(replay.Options{Catalog: cat})
		if err != nil {
			t.Fatal(err)
		}
		defer rs.Close()
	}
	sink := &replaySink{}
	agent, err := host.New(host.Config{
		HostID: "h1", Service: "BidServers", DC: "DC1",
		Catalog: cat, Sink: sink,
		FlushInterval: time.Hour, // explicit Flush only
		Record:        rs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	hq := transport.HostQuery{
		QueryID:      1,
		EventType:    "bid",
		TypeIdx:      0,
		Pred:         plan.HostPred["bid"],
		Columns:      plan.Columns["bid"],
		SampleEvents: plan.SampleEvents,
		StartNanos:   start,
		EndNanos:     end,
		ReplayNanos:  int64(replaySpan),
	}

	if before {
		if err := agent.Start(hq); err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			agent.Log(ev)
		}
		agent.Flush()
	} else {
		for _, ev := range events {
			agent.Log(ev) // recorded only: no query is listening
		}
		if err := agent.Start(hq); err != nil {
			t.Fatal(err)
		}
		if !sink.waitDone(5 * time.Second) {
			t.Fatal("replay arm: done marker never shipped")
		}
	}

	eng := central.NewEngine()
	cp := central.FromPlan(plan, 1, start, end, 1, 1)
	cp.Replay = replaySpan
	col := &collector{name: "replay-arm"}
	if err := eng.StartQuery(cp, col.emit); err != nil {
		t.Fatal(err)
	}
	for _, b := range sink.all() {
		eng.HandleBatch(b)
	}
	stats, ok := eng.StopQuery(1)
	if !ok {
		t.Fatal("StopQuery missed")
	}

	// Distributed cross-check: the same shipped batches through a
	// coordinator + 2-shard pipe topology must match the engine bit for
	// bit — including the replay arm, where the hold settles across
	// shards via the manifests' ReplayDone markers.
	topo := newPipeTopology(2, central.Options{}, replayCatalog)
	defer topo.close()
	cpMP := cp
	cpMP.Text = queryText
	mp := &collector{name: "replay-multi"}
	if err := topo.start(cpMP, mp.emit); err != nil {
		t.Fatal(err)
	}
	for _, b := range sink.all() {
		if err := topo.router.SendBatch(transport.CloneBatch(b)); err != nil {
			t.Fatalf("multiproc routing: %v", err)
		}
	}
	mpStats, ok := topo.coord.StopQuery(1)
	if !ok {
		t.Fatal("multiproc StopQuery missed")
	}
	// compareWindowLists, not compareReplayWindows: shard merges
	// re-associate float additions, so cross-executor floats carry the
	// sweep's 1e-9 relative tolerance (bit-exactness holds within an
	// executor, which is what the two replay arms assert).
	if err := compareWindowLists(col.wins, mp.wins, 2); err != nil {
		t.Errorf("engine vs 2-process topology (before=%v): %v", before, err)
	}
	if stats != mpStats {
		t.Errorf("engine vs 2-process topology stats (before=%v): %+v vs %+v", before, stats, mpStats)
	}

	return col.wins, stats
}

// compareReplayWindows demands bit-identical results across the two
// arms on everything deterministic: spans, columns, rows, approximation
// flags, error bounds, and window accounting. Stream snapshots are
// excluded — they carry measured CPU/byte costs that legitimately differ
// between runs.
func compareReplayWindows(live, replayed []transport.ResultWindow) error {
	if len(live) != len(replayed) {
		return fmt.Errorf("window count: live %d vs replayed %d", len(live), len(replayed))
	}
	for i := range live {
		a, b := live[i], replayed[i]
		if a.WindowStart != b.WindowStart || a.WindowEnd != b.WindowEnd {
			return fmt.Errorf("window %d span: [%d,%d) vs [%d,%d)", i, a.WindowStart, a.WindowEnd, b.WindowStart, b.WindowEnd)
		}
		if !reflect.DeepEqual(a.Columns, b.Columns) {
			return fmt.Errorf("window %d columns: %v vs %v", i, a.Columns, b.Columns)
		}
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			return fmt.Errorf("window %d [%d,%d) rows differ:\n  live:     %v\n  replayed: %v",
				i, a.WindowStart, a.WindowEnd, a.Rows, b.Rows)
		}
		if a.Approx != b.Approx {
			return fmt.Errorf("window %d approx: %v vs %v", i, a.Approx, b.Approx)
		}
		if !reflect.DeepEqual(a.ErrBounds, b.ErrBounds) {
			return fmt.Errorf("window %d bounds: %v vs %v", i, a.ErrBounds, b.ErrBounds)
		}
		if a.Stats != b.Stats {
			return fmt.Errorf("window %d stats: %+v vs %+v", i, a.Stats, b.Stats)
		}
	}
	return nil
}

func TestReplayEquivalence(t *testing.T) {
	base := int64(1_700_000_000_000_000_000)
	events := replayBurst(base)
	for _, queryText := range []string{
		`select bid.user_id, count(*) from bid where bid.bid_price > 0.5 group by bid.user_id window 5s`,
		`select count(*), sum(bid.bid_price), avg(bid.bid_price) from bid window 10s`,
		`select bid.user_id, bid.city from bid where bid.user_id = 3 window 10s`,
	} {
		liveWins, liveStats := runReplayArm(t, queryText, events, base, true)
		replayWins, replayStats := runReplayArm(t, queryText, events, base, false)
		if len(liveWins) == 0 {
			t.Fatalf("%s: live arm emitted no windows", queryText)
		}
		if err := compareReplayWindows(liveWins, replayWins); err != nil {
			t.Errorf("%s: %v", queryText, err)
		}
		if liveStats != replayStats {
			t.Errorf("%s: final stats: live %+v vs replayed %+v", queryText, liveStats, replayStats)
		}
	}
}
