// Package difftest is the seeded differential-simulation harness that
// cross-checks the single-node Engine, the ShardedEngine at several
// shard counts, and the exact oracle (internal/oracle) over randomly
// generated queries and event streams.
//
// Everything is derived deterministically from one int64 seed: the query
// text (drawn from the ql grammar), the event streams (hosts, request-id
// join structure, bounded out-of-order arrival), the batch interleaving,
// the tick schedule, and any chaos (host death, duplicated batches, late
// redelivery). A failure therefore reproduces from its seed alone; every
// contract violation prints the exact `go test` replay command.
package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"scrub/internal/event"
)

// catalog returns the fixed simulation catalog: an ad-serving "bid"
// stream and a lower-rate "exclusion" stream sharing request ids, the
// paper's running example.
func catalog() *event.Catalog {
	cat := event.NewCatalog()
	cat.MustRegister(event.MustSchema("bid",
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
		event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
		event.FieldDef{Name: "country", Kind: event.KindString},
	))
	cat.MustRegister(event.MustSchema("exclusion",
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
		event.FieldDef{Name: "reason", Kind: event.KindString},
	))
	return cat
}

var countries = []string{"us", "uk", "de", "fr", "jp", "br"}
var reasons = []string{"fraud", "viewability", "budget", "blocklist"}

// Query families. Each family exercises a different slice of the central
// evaluator; deriveConfig cycles through them so a seed sweep covers all.
const (
	famRaw       = iota // selection/projection, ORDER BY, LIMIT — no aggregates
	famGrouped          // GROUP BY with standard aggregates, HAVING
	famUngrouped        // ungrouped COUNT/SUM/AVG/MIN/MAX
	famTopK             // TOP_K over a small universe (exact: universe < capacity)
	famDistinct         // COUNT_DISTINCT — checked by sketch guarantee, never row-exact
	famJoin             // two-type request-id equi-join
	numFamilies
)

func famName(f int) string {
	return [...]string{"raw", "grouped", "ungrouped", "topk", "distinct", "join"}[f]
}

func pick(rng *rand.Rand, opts ...string) string { return opts[rng.Intn(len(opts))] }

// windowClause picks tumbling and sliding window shapes.
func windowClause(rng *rand.Rand) string {
	return pick(rng,
		"window 5s", "window 10s", "window 8s",
		"window 4s slide 2s", "window 6s slide 3s", "window 10s slide 5s",
	)
}

// bidPred picks a WHERE clause over the bid stream (the analyzer decides
// host-vs-central placement; the harness honors whatever it picks).
func bidPred(rng *rand.Rand) string {
	return pick(rng,
		"",
		" where bid_price > 2.5",
		" where exchange_id = 2",
		" where user_id < 120 and exchange_id != 3",
		" where country = 'us'",
		" where bid_price >= 1.0 and bid_price < 4.0",
	)
}

// genQuery draws one query of the given family from the ql grammar.
func genQuery(rng *rand.Rand, fam int) string {
	switch fam {
	case famRaw:
		all := []string{"user_id", "exchange_id", "bid_price", "country"}
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		cols := all[:1+rng.Intn(len(all))]
		sort.Strings(cols)
		sel := ""
		for i, c := range cols {
			if i > 0 {
				sel += ", "
			}
			sel += c
		}
		q := "select " + sel + " from bid" + bidPred(rng)
		if rng.Intn(2) == 0 {
			q += fmt.Sprintf(" order by %d", 1+rng.Intn(len(cols)))
			if rng.Intn(2) == 0 {
				q += " desc"
			}
		}
		if rng.Intn(2) == 0 {
			q += fmt.Sprintf(" limit %d", []int{3, 5, 10}[rng.Intn(3)])
		}
		return q + " " + windowClause(rng)

	case famGrouped:
		key := pick(rng, "exchange_id", "country", "user_id")
		aggPool := []string{
			"count(*)", "count(user_id)", "sum(bid_price)", "avg(bid_price)",
			"min(user_id)", "max(bid_price)", "min(bid_price)", "max(user_id)",
		}
		rng.Shuffle(len(aggPool), func(i, j int) { aggPool[i], aggPool[j] = aggPool[j], aggPool[i] })
		n := 1 + rng.Intn(3)
		sel := key
		for _, a := range aggPool[:n] {
			sel += ", " + a
		}
		q := "select " + sel + " from bid" + bidPred(rng) + " group by " + key
		if rng.Intn(3) == 0 {
			q += fmt.Sprintf(" having count(*) >= %d", 1+rng.Intn(3))
		}
		if rng.Intn(2) == 0 {
			q += fmt.Sprintf(" order by %d desc", 1+rng.Intn(n+1))
			if rng.Intn(2) == 0 {
				q += fmt.Sprintf(" limit %d", 2+rng.Intn(5))
			}
		}
		return q + " " + windowClause(rng)

	case famUngrouped:
		aggPool := []string{
			"count(*)", "count(bid_price)", "sum(bid_price)", "avg(bid_price)",
			"min(user_id)", "max(user_id)", "min(bid_price)", "max(bid_price)",
		}
		rng.Shuffle(len(aggPool), func(i, j int) { aggPool[i], aggPool[j] = aggPool[j], aggPool[i] })
		n := 2 + rng.Intn(3)
		sel := ""
		for i, a := range aggPool[:n] {
			if i > 0 {
				sel += ", "
			}
			sel += a
		}
		return "select " + sel + " from bid" + bidPred(rng) + " " + windowClause(rng)

	case famTopK:
		k := []int{2, 3, 5}[rng.Intn(3)]
		// The country universe (6 values) is far below the SpaceSaving
		// capacity (max(8k, 64)), so counts are exact and the rendered
		// list must match the oracle's exact top-k row-for-row.
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("select top_k(country, %d) from bid%s %s", k, bidPred(rng), windowClause(rng))
		}
		return fmt.Sprintf("select exchange_id, top_k(country, %d) from bid%s group by exchange_id %s",
			k, bidPred(rng), windowClause(rng))

	case famDistinct:
		if rng.Intn(2) == 0 {
			return "select count_distinct(user_id) from bid" + bidPred(rng) + " " + windowClause(rng)
		}
		return "select count_distinct(user_id), count(*) from bid" + bidPred(rng) + " " + windowClause(rng)

	case famJoin:
		pred := pick(rng,
			"",
			" where bid.exchange_id = 2",
			" where exclusion.reason != 'budget'",
			" where bid.user_id > exclusion.line_item_id",
		)
		switch rng.Intn(3) {
		case 0:
			return "select bid.user_id, exclusion.reason from bid, exclusion" + pred + " " + windowClause(rng)
		case 1:
			return "select exclusion.reason, count(*) from bid, exclusion" + pred +
				" group by exclusion.reason " + windowClause(rng)
		default:
			return "select bid.exchange_id, sum(bid.bid_price), count(*) from bid, exclusion" + pred +
				" group by bid.exchange_id " + windowClause(rng)
		}
	}
	panic("unknown family")
}

// genEvent is one simulated event with its full field set (the host
// pipeline projects it down to the plan's columns).
type genEvent struct {
	host    string
	typeIdx int // 0 = bid, 1 = exclusion
	req     uint64
	ts      int64
	fields  map[string]event.Value
}

// genEvents builds per-host event timelines. Within each (host, type)
// stream, timestamps never move backwards by more than lateness/2, so in
// non-chaos runs nothing can be dropped as late: the watermark is the
// minimum stream position, windows stay open for `lateness` past it, and
// the simulator registers every stream with the engines before real
// volume flows (see the registration pass in Run).
// Join families also emit exclusion events sharing recent bid request
// ids — sometimes on a different host, the cross-machine join the paper
// targets.
func genEvents(rng *rand.Rand, fam int, hosts int, lateness time.Duration) []genEvent {
	var out []genEvent
	nextReq := uint64(1)
	jitter := int64(lateness) / 2

	type hostState struct{ name string }
	var hs []hostState
	for h := 0; h < hosts; h++ {
		hs = append(hs, hostState{name: fmt.Sprintf("host-%d", h)})
	}

	var recentReqs []uint64
	for h := range hs {
		n := 60 + rng.Intn(120)
		ts := int64(rng.Intn(3)) * int64(time.Second)
		var evs []genEvent
		for i := 0; i < n; i++ {
			ts += int64(rng.Intn(800)+1) * int64(time.Millisecond)
			req := nextReq
			nextReq++
			recentReqs = append(recentReqs, req)
			evs = append(evs, genEvent{
				host: hs[h].name, typeIdx: 0, req: req, ts: ts,
				fields: map[string]event.Value{
					"user_id":     event.Int(int64(rng.Intn(200))),
					"exchange_id": event.Int(int64(1 + rng.Intn(5))),
					"bid_price":   event.Float(float64(rng.Intn(1000)) / 100),
					"country":     event.Str(countries[rng.Intn(len(countries))]),
				},
			})
		}
		out = append(out, evs...)
	}

	if fam == famJoin {
		// Exclusions reference existing bid requests at ~40% rate, with a
		// few orphans; each lands near (but not exactly at) the bid's
		// time, often on another host.
		for _, req := range recentReqs {
			if rng.Float64() > 0.4 {
				continue
			}
			var bidTs int64
			for _, e := range out {
				if e.req == req {
					bidTs = e.ts
					break
				}
			}
			host := hs[rng.Intn(len(hs))].name
			out = append(out, genEvent{
				host: host, typeIdx: 1, req: req,
				ts: bidTs + int64(rng.Intn(1500)-400)*int64(time.Millisecond),
				fields: map[string]event.Value{
					"line_item_id": event.Int(int64(rng.Intn(300))),
					"reason":       event.Str(reasons[rng.Intn(len(reasons))]),
				},
			})
		}
		// A few orphan exclusions with no bid partner.
		for i := 0; i < 5+rng.Intn(10); i++ {
			out = append(out, genEvent{
				host: hs[rng.Intn(len(hs))].name, typeIdx: 1, req: nextReq,
				ts: int64(rng.Intn(30000)) * int64(time.Millisecond),
				fields: map[string]event.Value{
					"line_item_id": event.Int(int64(rng.Intn(300))),
					"reason":       event.Str(reasons[rng.Intn(len(reasons))]),
				},
			})
			nextReq++
		}
	}

	// Per-(host,type) bounded disorder: sort each stream by time, then
	// swap adjacent events whose gap is under lateness/2. Ordering across
	// streams is the interleaver's business.
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.host != b.host {
			return a.host < b.host
		}
		if a.typeIdx != b.typeIdx {
			return a.typeIdx < b.typeIdx
		}
		return a.ts < b.ts
	})
	for i := 1; i < len(out); i++ {
		a, b := &out[i-1], &out[i]
		if a.host == b.host && a.typeIdx == b.typeIdx &&
			b.ts-a.ts < jitter && rng.Intn(3) == 0 {
			out[i-1], out[i] = out[i], out[i-1]
		}
	}
	return out
}

// negative timestamps never occur by construction; events start at t≥0.
