package difftest

import (
	"flag"
	"testing"
)

var (
	flagSeed  = flag.Int64("difftest.seed", -1, "replay a single simulation seed (from a failure message)")
	flagSeeds = flag.Int64("difftest.seeds", 96, "number of seeds to sweep (one full family×shards×mode cycle)")
)

// TestDifferentialSweep is the main differential harness entry point.
//
//	go test ./internal/difftest                      # one full coverage cycle (96 sims)
//	make difftest                                    # 200 sims under -race
//	make difftest-soak                               # 2000 sims under -race
//	go test ./internal/difftest -difftest.seed=N -v  # replay one failing sim
//
// Every simulation derives its query, streams, interleaving and chaos
// schedule from its seed alone; a failure's message carries the exact
// replay command.
func TestDifferentialSweep(t *testing.T) {
	if *flagSeed >= 0 {
		runSeed(t, *flagSeed)
		return
	}
	n := *flagSeeds
	if testing.Short() {
		n = 24
	}
	covChecked, covHit := 0, 0
	for seed := int64(0); seed < n; seed++ {
		out := runSeed(t, seed)
		if out != nil {
			covChecked += out.CovChecked
			covHit += out.CovHit
		}
	}
	// Contract B is statistical: the Eq. 1–3 intervals are built at 95%
	// confidence, so aggregate coverage across the sweep must clear a
	// conservative floor (individual misses are expected and fine).
	if covChecked >= 20 {
		rate := float64(covHit) / float64(covChecked)
		t.Logf("sampling CI coverage: %d/%d = %.3f", covHit, covChecked, rate)
		if rate < 0.80 {
			t.Errorf("confidence-interval coverage %.3f (%d/%d) below 0.80 floor: Eq. 1–3 bounds are too tight",
				rate, covHit, covChecked)
		}
	} else if n >= 96 {
		t.Errorf("sweep of %d seeds produced only %d CI checks — sampled-mode coverage has rotted", n, covChecked)
	}
}

func runSeed(t *testing.T, seed int64) *Outcome {
	t.Helper()
	cfg := deriveConfig(seed)
	out, err := Run(cfg)
	if err != nil {
		t.Errorf("[%s] %v\n  replay: %s", cfg, err, ReplayCommand(seed))
		return out
	}
	if testing.Verbose() {
		t.Logf("[%s] ok: %d windows, %d/%d CI hits, query: %s",
			cfg, out.Windows, out.CovHit, out.CovChecked, out.Query)
	}
	return out
}

// TestRegressionSeeds pins seeds whose configurations exercise the
// divergences fixed in this change, so any reintroduction fails fast
// even if the sweep width is later reduced:
//
//   - sharded engines never closed windows on event time (Tick-only) and
//     never span-filtered before advancing the watermark — any exact
//     seed catches a resurrection because window sets would differ;
//   - mergeWinStates silently truncated raw rows and attributed no drop;
//   - ORDER BY ties and raw-row order were nondeterministic across
//     engines (LIMIT could keep different rows per engine);
//   - SpaceSaving.Merge lost mass for items unique to one summary and
//     evicted nondeterministically (shard-merged TOP_K differed);
//   - per-stream LateDrops were unattributed in the sharded merger
//     (chaos-mode stream stats diverged);
//   - windows flushed during ShardedEngine.StopQuery forgot the shards'
//     cumulative late/overflow drops (the shard queries were already torn
//     down when the final windows rendered, so dropsOf returned nothing
//     and their stats reverted to zero while the Engine's kept counting);
//   - Eq. 1 confidence intervals were far too tight under event sampling:
//     the within-host variance term assumed the per-window cluster size
//     Mᵢ was known, so for COUNT (every sampled value 1, s²ᵢ = 0) the
//     bound collapsed to zero while the estimate mᵢ/q carried full
//     binomial error — sweep coverage sat near 0.79 instead of ≥0.95;
//   - the coordinator published a query before installing it on shards
//     (manifests could fold into a registration that was later rolled
//     back) and skipped LateDelta/ObserveTs on tuple-free manifests; the
//     failover arm kills the replicating leader mid-delivery on every
//     seed, so any of these — or a takeover that loses a registration,
//     double-emits a collected window, or forgets the Degraded latch —
//     diverges against the Engine.
//
// The seeds below cover each family in exact mode at multiple shard
// counts plus chaos mode at several shard counts (mode cycle: 24-seed
// blocks; see deriveConfig).
func TestRegressionSeeds(t *testing.T) {
	seeds := []int64{
		0,  // raw,      1 shard, exact: canonical raw-row order
		1,  // grouped,  1 shard, exact
		3,  // topk,     1 shard, exact: SpaceSaving merge + determinism
		5,  // join,     1 shard, exact: join fan-out + pending merge
		9,  // topk,     2 shards, exact: cross-shard sketch merge
		15, // topk,     4 shards, exact
		21, // topk,     8 shards, exact
		18, // raw,      8 shards, exact: merge truncation accounting
		22, // distinct, 8 shards, exact: HLL register-max merge
		23, // join,     8 shards, exact
		72, // raw,      1 shard, chaos: late redelivery + host death
		76, // distinct, 1 shard, chaos: stop-flush drop accounting
		78, // raw,      2 shards, chaos: stop-flush drop accounting
		86, // ungrouped, 4 shards, chaos: stop-flush drop accounting
		87, // topk,     4 shards, chaos: stop-flush drop accounting
		93, // topk,     8 shards, chaos: stop-flush drop accounting
		95, // join,     8 shards, chaos: degraded-window agreement
		13, // grouped,  4 shards, exact: leader killed mid-query, standby resumes
		69, // topk,     8 shards, hostsample: failover under host subsetting
	}
	for _, seed := range seeds {
		runSeed(t, seed)
	}
}
