package difftest

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"scrub/internal/agg"
	"scrub/internal/central"
	"scrub/internal/event"
	"scrub/internal/expr"
	"scrub/internal/oracle"
	"scrub/internal/ql"
	"scrub/internal/sketch"
	"scrub/internal/transport"
)

// Run modes. Exact runs must match the oracle row-for-row with zero late
// drops; sampled and host-sampled runs are checked for cross-engine
// agreement plus confidence-interval coverage; chaos runs (host death,
// duplicated batches, late redelivery) are checked for cross-engine
// agreement only — the engines must still agree bit-for-bit on results
// AND on their degradation accounting.
const (
	modeExact = iota
	modeSampled
	modeHostSample
	modeChaos
	numModes
)

func modeName(m int) string {
	return [...]string{"exact", "sampled", "hostsample", "chaos"}[m]
}

// Config fully determines one simulation. deriveConfig maps a bare seed
// onto the coverage grid so a contiguous seed sweep visits every
// (family × shards × mode) combination every 96 seeds.
type Config struct {
	Seed   int64
	Family int
	Shards int
	Mode   int
}

var shardCounts = []int{1, 2, 4, 8}

func deriveConfig(seed int64) Config {
	s := seed
	if s < 0 {
		s = -s
	}
	return Config{
		Seed:   seed,
		Family: int(s % numFamilies),
		Shards: shardCounts[(s/numFamilies)%int64(len(shardCounts))],
		Mode:   int((s / (numFamilies * int64(len(shardCounts)))) % numModes),
	}
}

// ReplayCommand is printed with every failure: running it reproduces the
// exact simulation (query, streams, interleaving, chaos) from the seed.
func ReplayCommand(seed int64) string {
	return fmt.Sprintf("go test ./internal/difftest -run 'TestDifferentialSweep' -difftest.seed=%d -v", seed)
}

func (c Config) String() string {
	return fmt.Sprintf("seed=%d family=%s shards=%d mode=%s",
		c.Seed, famName(c.Family), c.Shards, modeName(c.Mode))
}

// Outcome carries per-sim accounting the sweep aggregates (CI coverage
// is a statistical contract checked across the whole sweep, not per run).
type Outcome struct {
	Query      string
	Windows    int
	CovChecked int // sampled-mode (estimate, bound) pairs examined
	CovHit     int // ... of which contained the oracle's exact truth
}

// vclock is the harness-controlled wall clock shared by both engines.
// The harness is single-threaded, so a plain field suffices.
type vclock struct{ nanos int64 }

func (v *vclock) now() time.Time { return time.Unix(0, v.nanos) }

// hostRow adapts a generated event for host-side predicate evaluation.
type hostRow struct {
	typ string
	e   *genEvent
}

func (r hostRow) Field(typ, name string) event.Value {
	if typ != "" && typ != r.typ {
		return event.Invalid
	}
	switch name {
	case event.FieldRequestID:
		return event.Int(int64(r.e.req))
	case event.FieldTimestamp:
		return event.TimeNanos(r.e.ts)
	}
	v, ok := r.e.fields[name]
	if !ok {
		return event.Invalid
	}
	return v
}

func (hostRow) Agg(int) event.Value { return event.Invalid }

type collector struct {
	name string
	wins []transport.ResultWindow
}

func (c *collector) emit(rw transport.ResultWindow) {
	if debugTrace {
		fmt.Printf("  emit[%s] #%d [%d,%d) rows=%d stats=%+v\n",
			c.name, len(c.wins), rw.WindowStart, rw.WindowEnd, len(rw.Rows), rw.Stats)
	}
	c.wins = append(c.wins, rw)
}

// debugTrace dumps per-delivery and per-emission details while replaying
// a seed (DIFFTEST_DEBUG=1); it exists for harness archaeology only.
var debugTrace = os.Getenv("DIFFTEST_DEBUG") != ""

// Run executes one seeded simulation and checks every applicable
// contract. A non-nil error is a contract violation (or a harness bug);
// the caller attaches the replay command.
func Run(cfg Config) (*Outcome, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	src := genQuery(rng, cfg.Family)
	out := &Outcome{Query: src}

	q, err := ql.Parse(src)
	if err != nil {
		return out, fmt.Errorf("generated query does not parse: %v\n  query: %s", err, src)
	}
	qp, err := ql.Analyze(q, catalog())
	if err != nil {
		return out, fmt.Errorf("generated query does not analyze: %v\n  query: %s", err, src)
	}

	hosts := 2 + rng.Intn(3)
	totalHosts, sampledHosts := hosts, hosts
	if cfg.Mode == modeHostSample {
		sampledHosts = 1 + rng.Intn(hosts-1)
	}
	plan := central.FromPlan(qp, 1, 0, 0, totalHosts, sampledHosts)
	plan.Lateness = 2 * time.Second
	rate := 1.0
	if cfg.Mode == modeSampled {
		rate = []float64{0.5, 0.25}[rng.Intn(2)]
		plan.SampleEvents = rate
	}

	events := genEvents(rng, cfg.Family, hosts, plan.Lateness)

	// --- host pipeline: selection, sampling, projection, batching ---

	hostPreds := make([]func(expr.Row) bool, len(plan.Types))
	for i, typ := range plan.Types {
		if n := qp.HostPred[typ]; n != nil {
			ev, cerr := expr.Compile(n)
			if cerr != nil {
				return out, fmt.Errorf("host predicate compile: %v", cerr)
			}
			hostPreds[i] = expr.Predicate(ev)
		}
	}

	shipping := make(map[string]bool, hosts)
	hostNames := make([]string, hosts)
	for h := 0; h < hosts; h++ {
		hostNames[h] = fmt.Sprintf("host-%d", h)
		shipping[hostNames[h]] = true
	}
	if cfg.Mode == modeHostSample {
		perm := rng.Perm(hosts)
		for h := range shipping {
			shipping[h] = false
		}
		for _, i := range perm[:sampledHosts] {
			shipping[hostNames[i]] = true
		}
	}

	type streamState struct {
		host             string
		typeIdx          int
		batches          []transport.TupleBatch
		pending          []transport.Tuple
		limit            int
		matched, shipped uint64
	}
	streams := make(map[string]*streamState)
	var streamKeys []string
	var oracleEvents []oracle.Event

	key := func(host string, typeIdx int) string { return fmt.Sprintf("%s/%d", host, typeIdx) }
	flush := func(s *streamState) {
		if len(s.pending) == 0 {
			return
		}
		s.batches = append(s.batches, transport.TupleBatch{
			QueryID:      plan.QueryID,
			HostID:       s.host,
			TypeIdx:      uint8(s.typeIdx),
			Tuples:       s.pending,
			MatchedTotal: s.matched,
			SampledTotal: s.shipped,
		})
		s.pending = nil
		s.limit = 4 + rng.Intn(6)
	}

	for i := range events {
		e := &events[i]
		if e.typeIdx >= len(plan.Types) {
			continue // exclusion events under a single-type plan never ship
		}
		if pred := hostPreds[e.typeIdx]; pred != nil && !pred(hostRow{typ: plan.Types[e.typeIdx], e: e}) {
			continue
		}
		cols := plan.Columns[e.typeIdx]
		vals := make([]event.Value, len(cols))
		for ci, c := range cols {
			vals[ci] = e.fields[c]
		}
		// The oracle sees the full matched population from every host —
		// no sampling, no host subsetting: it is the ground truth the
		// sampled estimates are judged against.
		oracleEvents = append(oracleEvents, oracle.Event{
			Host: e.host, TypeIdx: e.typeIdx, RequestID: e.req, TsNanos: e.ts, Values: vals,
		})
		if !shipping[e.host] {
			continue
		}
		k := key(e.host, e.typeIdx)
		s := streams[k]
		if s == nil {
			// First batch is a single tuple (limit 1): it registers the
			// stream with the engines' watermark before real volume flows —
			// see the registration pass below.
			s = &streamState{host: e.host, typeIdx: e.typeIdx, limit: 1}
			streams[k] = s
			streamKeys = append(streamKeys, k)
		}
		s.matched++
		if rate < 1 && rng.Float64() >= rate {
			continue
		}
		s.shipped++
		s.pending = append(s.pending, transport.Tuple{RequestID: e.req, TsNanos: e.ts, Values: vals})
		if len(s.pending) >= s.limit {
			flush(s)
		}
	}
	for _, k := range streamKeys {
		flush(streams[k])
	}

	// --- interleave per-stream batch queues into one delivery order ---

	sort.Strings(streamKeys)
	idx := make(map[string]int, len(streamKeys))
	batchMaxTs := func(b transport.TupleBatch) int64 {
		var m int64
		for _, t := range b.Tuples {
			if t.TsNanos > m {
				m = t.TsNanos
			}
		}
		return m
	}
	// Registration pass: every stream's first (single-tuple) batch is
	// delivered up front, in ascending event-time order. The engines'
	// watermark is a minimum over streams that have shipped at least one
	// tuple — a stream is invisible until then — so a stream whose first
	// batch arrived after others had advanced would find its early windows
	// already closed: a harness artifact, not an engine bug. Registering
	// everyone first keeps the watermark a true minimum over all streams
	// for the remainder of the run, and the ascending order means no
	// first tuple can itself be behind the watermark the earlier ones
	// establish.
	var deliveries []transport.TupleBatch
	for _, k := range streamKeys {
		if len(streams[k].batches) > 0 {
			deliveries = append(deliveries, streams[k].batches[0])
			idx[k] = 1
		}
	}
	sort.SliceStable(deliveries, func(i, j int) bool {
		return batchMaxTs(deliveries[i]) < batchMaxTs(deliveries[j])
	})
	for {
		best, bestTs := "", int64(math.MaxInt64)
		var nonEmpty []string
		for _, k := range streamKeys {
			s := streams[k]
			if idx[k] >= len(s.batches) {
				continue
			}
			nonEmpty = append(nonEmpty, k)
			if ts := batchMaxTs(s.batches[idx[k]]); ts < bestTs {
				best, bestTs = k, ts
			}
		}
		if best == "" {
			break
		}
		// Mostly time order; sometimes an arbitrary ready stream, which
		// models network skew but stays within the lateness bound because
		// each stream is individually near-sorted.
		if len(nonEmpty) > 1 && rng.Intn(4) == 0 {
			best = nonEmpty[rng.Intn(len(nonEmpty))]
		}
		deliveries = append(deliveries, streams[best].batches[idx[best]])
		idx[best]++
	}

	// --- chaos: host death, duplicated batches, late redelivery ---

	var deadHost string
	if cfg.Mode == modeChaos && len(deliveries) > 4 {
		deadHost = hostNames[rng.Intn(hosts)]
		var victimTotal, victimSeen int
		for _, b := range deliveries {
			if b.HostID == deadHost {
				victimTotal++
			}
		}
		cut := victimTotal * 3 / 5
		var alive, late []transport.TupleBatch
		for _, b := range deliveries {
			if b.HostID == deadHost {
				victimSeen++
				if victimSeen > cut {
					continue // host died: remaining batches are lost
				}
			}
			switch rng.Intn(20) {
			case 0:
				late = append(late, b) // delayed far beyond lateness
			case 1:
				alive = append(alive, b, b) // duplicated delivery
			default:
				alive = append(alive, b)
			}
		}
		deliveries = append(alive, late...)
	}

	// --- drive both engines over the identical delivery sequence ---

	vc := &vclock{}
	ttl := time.Hour
	if cfg.Mode == modeChaos {
		ttl = 2 * time.Second
	}
	opts := central.Options{Clock: vc.now, LeaseTTL: ttl}
	eng := central.NewEngineWith(opts)
	sh, err := central.NewShardedEngineWith(cfg.Shards, opts)
	if err != nil {
		return out, err
	}
	cEng, cSh := collector{name: "eng"}, collector{name: "shard"}
	if err := eng.StartQuery(plan, cEng.emit); err != nil {
		return out, err
	}
	if err := sh.StartQuery(plan, cSh.emit); err != nil {
		return out, err
	}

	// Third executor: the same streams through a real multi-process
	// topology — coordinator, shard nodes and a host-side router over the
	// pipe transport, every hop through the wire codec. The process count
	// maps the in-process shard axis onto the fabric sizes the acceptance
	// gate pins (N ∈ {2,4}).
	procs := 2
	if cfg.Shards >= 4 {
		procs = 4
	}
	topo := newPipeTopology(procs, opts, catalog)
	defer topo.close()
	planMP := plan
	planMP.Text = src
	cMP := collector{name: "multi"}
	if err := topo.start(planMP, cMP.emit); err != nil {
		return out, err
	}

	// Fourth executor: the same fabric under a replicating leader the
	// harness kills halfway through the delivery sequence. The standby
	// promotes under a higher fencing term and finishes the query against
	// the surviving shard nodes.
	fo := newFailoverTopology(procs, opts, catalog)
	defer fo.close()
	planFO := plan
	planFO.Text = src
	cFO := collector{name: "failover"}
	if err := fo.start(planFO, cFO.emit); err != nil {
		return out, err
	}
	killAt := -1
	if len(deliveries) >= 4 {
		killAt = len(deliveries) / 2
	}
	foPre := -1 // leader-emitted window count at the kill; -1 = never killed

	// The tick watermark is valid only once EVERY stream that will ever
	// ship has reported: a minimum over a prefix of the streams runs
	// ahead of the true watermark, and ticking with it would force-close
	// windows that laggard streams still have events for — manufacturing
	// late drops the contracts forbid.
	expectedStreams := 0
	for _, k := range streamKeys {
		if len(streams[k].batches) > 0 {
			expectedStreams++
		}
	}
	streamMax := make(map[string]int64)
	watermark := func() (int64, bool) {
		if len(streamMax) < expectedStreams {
			return 0, false
		}
		var wm int64 = math.MaxInt64
		for _, ts := range streamMax {
			if ts < wm {
				wm = ts
			}
		}
		return wm, len(streamMax) > 0
	}
	for i, b := range deliveries {
		if debugTrace {
			var mn, mx int64 = math.MaxInt64, 0
			for _, t := range b.Tuples {
				mn, mx = min(mn, t.TsNanos), max(mx, t.TsNanos)
			}
			fmt.Printf("deliver %d: %s/%d n=%d ts=[%.2fs,%.2fs]\n",
				i, b.HostID, b.TypeIdx, len(b.Tuples), float64(mn)/1e9, float64(mx)/1e9)
		}
		if mts := batchMaxTs(b); mts > 0 {
			if mts > vc.nanos {
				vc.nanos = mts
			}
			k := key(b.HostID, int(b.TypeIdx))
			if mts > streamMax[k] {
				streamMax[k] = mts
			}
		}
		if i == killAt {
			foPre = len(cFO.wins)
			if debugTrace {
				fmt.Printf("failover: killing leader before delivery %d (%d windows emitted)\n", i, foPre)
			}
			if err := fo.failover(); err != nil {
				return out, err
			}
		}
		eng.HandleBatch(transport.CloneBatch(b))
		sh.HandleBatch(transport.CloneBatch(b))
		if err := topo.router.SendBatch(transport.CloneBatch(b)); err != nil {
			return out, fmt.Errorf("multiproc routing: %v", err)
		}
		if err := fo.router.SendBatch(transport.CloneBatch(b)); err != nil {
			return out, fmt.Errorf("failover routing: %v", err)
		}
		if i%7 == 6 {
			// Exact modes tick at the harness-tracked watermark — never
			// ahead of what event time has justified, so ticking cannot
			// manufacture late drops. Chaos ticks at full wall speed.
			now := vc.nanos
			if cfg.Mode != modeChaos {
				wm, ok := watermark()
				if !ok {
					continue
				}
				now = wm
			}
			eng.Tick(now)
			sh.Tick(now)
			topo.coord.Tick(now)
			fo.coord.Tick(now)
		}
	}
	if cfg.Mode == modeChaos {
		// Let the dead host's lease expire and tick the eviction through.
		vc.nanos += int64(ttl) + int64(5*time.Second)
		eng.Tick(vc.nanos)
		sh.Tick(vc.nanos)
		topo.coord.Tick(vc.nanos)
		fo.coord.Tick(vc.nanos)
		eng.Tick(vc.nanos)
		sh.Tick(vc.nanos)
		topo.coord.Tick(vc.nanos)
		fo.coord.Tick(vc.nanos)
	}
	engStats, _ := eng.StopQuery(plan.QueryID)
	shStats, _ := sh.StopQuery(plan.QueryID)
	mpStats, _ := topo.coord.StopQuery(plan.QueryID)
	foStats, foOK := fo.coord.StopQuery(plan.QueryID)
	if !foOK {
		return out, fmt.Errorf("failover topology lost query %d at StopQuery\n  query: %s", plan.QueryID, src)
	}

	ew, sw := cEng.wins, cSh.wins
	out.Windows = len(ew)

	// --- contract D: Engine and ShardedEngine agree on everything ---

	if err := compareWindowLists(ew, sw, cfg.Shards); err != nil {
		return out, fmt.Errorf("cross-engine divergence (Engine vs %d-shard): %v\n  query: %s", cfg.Shards, err, src)
	}
	if err := compareStats(engStats, shStats); err != nil {
		return out, fmt.Errorf("cross-engine stats divergence (Engine vs %d-shard): %v\n  query: %s", cfg.Shards, err, src)
	}

	// --- contract D': the multi-process topology agrees too ---

	if err := compareWindowLists(ew, cMP.wins, procs); err != nil {
		return out, fmt.Errorf("cross-engine divergence (Engine vs %d-process topology): %v\n  query: %s", procs, err, src)
	}
	if err := compareStats(engStats, mpStats); err != nil {
		return out, fmt.Errorf("cross-engine stats divergence (Engine vs %d-process topology): %v\n  query: %s", procs, err, src)
	}

	// --- contract D'': the failover topology survives its leader kill ---

	if foPre < 0 {
		// Too few deliveries to kill mid-query: the leader ran the whole
		// sim and must be bit-identical like the other arms (replication
		// on, fencing at term 1 — neither may perturb results).
		if err := compareWindowLists(ew, cFO.wins, procs); err != nil {
			return out, fmt.Errorf("cross-engine divergence (Engine vs replicating leader): %v\n  query: %s", err, src)
		}
		if err := compareStats(engStats, foStats); err != nil {
			return out, fmt.Errorf("cross-engine stats divergence (Engine vs replicating leader): %v\n  query: %s", err, src)
		}
	} else if err := compareFailoverWindows(ew, cFO.wins, foPre, procs); err != nil {
		return out, fmt.Errorf("failover divergence (Engine vs promoted standby, %d-process): %v\n  query: %s", procs, err, src)
	}

	if cfg.Mode == modeChaos {
		return out, nil // no oracle contract under injected loss
	}

	// --- oracle contracts ---

	owins, err := oracle.Eval(plan, oracleEvents)
	if err != nil {
		return out, fmt.Errorf("oracle: %v\n  query: %s", err, src)
	}
	obyStart := make(map[int64]*oracle.Result, len(owins))
	for i := range owins {
		obyStart[owins[i].Start] = &owins[i]
	}

	switch cfg.Mode {
	case modeExact:
		if engStats.LateDrops != 0 {
			return out, fmt.Errorf("exact run dropped %d tuples as late — the harness guarantees none are\n  query: %s",
				engStats.LateDrops, src)
		}
		if len(ew) != len(owins) {
			return out, fmt.Errorf("window count: engine %d, oracle %d\n  query: %s", len(ew), len(owins), src)
		}
		for i := range ew {
			o := obyStart[ew[i].WindowStart]
			if o == nil || ew[i].WindowEnd != o.End {
				return out, fmt.Errorf("window %d span [%d,%d) has no oracle counterpart\n  query: %s",
					i, ew[i].WindowStart, ew[i].WindowEnd, src)
			}
			if err := compareToOracle(&plan, ew[i], o); err != nil {
				return out, fmt.Errorf("window [%d,%d): %v\n  query: %s", o.Start, o.End, err, src)
			}
		}
	case modeSampled, modeHostSample:
		// Contract B: Eq. 1–3 confidence intervals must contain the exact
		// truth at roughly the configured confidence. Individual misses
		// are expected; the sweep asserts the aggregate coverage rate.
		for i := range ew {
			o := obyStart[ew[i].WindowStart]
			if o == nil || len(o.AggExact) == 0 || len(ew[i].ErrBounds) == 0 || len(ew[i].Rows) != 1 {
				continue
			}
			for col, item := range plan.Select {
				ar, ok := item.Expr.(expr.AggRef)
				if !ok || !ar.Spec.Scalable() || col >= len(ew[i].ErrBounds) {
					continue
				}
				bound := ew[i].ErrBounds[col]
				truth := o.AggExact[ar.Index].Float
				est, fok := ew[i].Rows[0][col].AsFloat()
				if math.IsNaN(bound) || math.IsNaN(truth) || !fok {
					continue
				}
				out.CovChecked++
				if math.Abs(est-truth) <= bound+1e-9*math.Abs(truth) {
					out.CovHit++
				}
			}
		}
	}
	return out, nil
}

// hllStdError mirrors the default-precision HLL relative standard error
// the engine's COUNT_DISTINCT uses.
var hllStdError = 1.04 / math.Sqrt(float64(int(1)<<sketch.DefaultHLLPrecision))

// distinctTolerance is the sketch-guarantee bound for COUNT_DISTINCT:
// 5 standard errors (the bound the sketch's own tests enforce), floored
// for tiny cardinalities where rounding dominates.
func distinctTolerance(truth float64) float64 {
	tol := 5 * hllStdError * truth
	if tol < 3 {
		tol = 3
	}
	return tol
}

// compareToOracle checks one engine window against the oracle row-for-row
// (contract A). COUNT_DISTINCT columns are held to the sketch guarantee
// instead of exact equality; every other column — including TOP_K, whose
// generated universes stay below SpaceSaving capacity — must match.
func compareToOracle(p *central.Plan, ew transport.ResultWindow, o *oracle.Result) error {
	if len(ew.Rows) != len(o.Rows) {
		return fmt.Errorf("row count: engine %d, oracle %d\n  engine: %v\n  oracle: %v",
			len(ew.Rows), len(o.Rows), ew.Rows, o.Rows)
	}
	for r := range ew.Rows {
		if len(ew.Rows[r]) != len(o.Rows[r]) {
			return fmt.Errorf("row %d width: engine %d, oracle %d", r, len(ew.Rows[r]), len(o.Rows[r]))
		}
		for c := range ew.Rows[r] {
			if ar, ok := p.Select[c].Expr.(expr.AggRef); ok && ar.Spec.Kind == agg.KindCountDistinct {
				est, eok := ew.Rows[r][c].AsFloat()
				truth, tok := o.Rows[r][c].AsFloat()
				if !eok || !tok {
					return fmt.Errorf("row %d col %d: non-numeric COUNT_DISTINCT (engine %v, oracle %v)",
						r, c, ew.Rows[r][c], o.Rows[r][c])
				}
				if math.Abs(est-truth) > distinctTolerance(truth) {
					return fmt.Errorf("row %d col %d: COUNT_DISTINCT %v vs exact %v exceeds sketch bound %.2f",
						r, c, est, truth, distinctTolerance(truth))
				}
				continue
			}
			if !valuesClose(ew.Rows[r][c], o.Rows[r][c]) {
				return fmt.Errorf("row %d col %d: engine %v, oracle %v\n  engine row: %v\n  oracle row: %v",
					r, c, ew.Rows[r][c], o.Rows[r][c], ew.Rows[r], o.Rows[r])
			}
		}
	}
	return nil
}

// valuesClose is exact for everything except float comparisons, which
// allow 1e-9 relative error (shard merges re-associate float additions).
func valuesClose(a, b event.Value) bool {
	if !a.IsValid() || !b.IsValid() {
		return a.IsValid() == b.IsValid()
	}
	if la, ok := a.AsList(); ok {
		lb, ok := b.AsList()
		if !ok || len(la) != len(lb) {
			return false
		}
		for i := range la {
			if !valuesClose(la[i], lb[i]) {
				return false
			}
		}
		return true
	}
	fa, oka := a.AsFloat()
	fb, okb := b.AsFloat()
	if oka && okb {
		if math.IsNaN(fa) || math.IsNaN(fb) {
			return math.IsNaN(fa) && math.IsNaN(fb)
		}
		return floatsClose(fa, fb)
	}
	return a.Equal(b)
}

func floatsClose(a, b float64) bool {
	if a == b {
		return true // exact match, including equal infinities (Inf-Inf is NaN)
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

// compareWindowLists enforces contract D field by field, including the
// degradation accounting a consumer acts on.
func compareWindowLists(ew, sw []transport.ResultWindow, shards int) error {
	if len(ew) != len(sw) {
		return fmt.Errorf("window count: %d vs %d", len(ew), len(sw))
	}
	for i := range ew {
		a, b := ew[i], sw[i]
		if a.WindowStart != b.WindowStart || a.WindowEnd != b.WindowEnd {
			return fmt.Errorf("window %d span: [%d,%d) vs [%d,%d)", i, a.WindowStart, a.WindowEnd, b.WindowStart, b.WindowEnd)
		}
		if len(a.Columns) != len(b.Columns) {
			return fmt.Errorf("window %d columns: %v vs %v", i, a.Columns, b.Columns)
		}
		if a.Approx != b.Approx || a.Degraded != b.Degraded || a.BudgetShed != b.BudgetShed {
			return fmt.Errorf("window %d flags: approx %v/%v degraded %v/%v shed %v/%v",
				i, a.Approx, b.Approx, a.Degraded, b.Degraded, a.BudgetShed, b.BudgetShed)
		}
		if len(a.Rows) != len(b.Rows) {
			return fmt.Errorf("window %d [%d,%d) rows: %d vs %d\n  engine: %v\n  sharded: %v",
				i, a.WindowStart, a.WindowEnd, len(a.Rows), len(b.Rows), a.Rows, b.Rows)
		}
		for r := range a.Rows {
			if len(a.Rows[r]) != len(b.Rows[r]) {
				return fmt.Errorf("window %d row %d width: %d vs %d", i, r, len(a.Rows[r]), len(b.Rows[r]))
			}
			for c := range a.Rows[r] {
				if !valuesClose(a.Rows[r][c], b.Rows[r][c]) {
					return fmt.Errorf("window %d [%d,%d) row %d col %d: %v vs %v",
						i, a.WindowStart, a.WindowEnd, r, c, a.Rows[r][c], b.Rows[r][c])
				}
			}
		}
		if len(a.ErrBounds) != len(b.ErrBounds) {
			return fmt.Errorf("window %d bounds len: %d vs %d", i, len(a.ErrBounds), len(b.ErrBounds))
		}
		for c := range a.ErrBounds {
			x, y := a.ErrBounds[c], b.ErrBounds[c]
			if math.IsNaN(x) != math.IsNaN(y) || (!math.IsNaN(x) && !floatsClose(x, y)) {
				return fmt.Errorf("window %d bound %d: %v vs %v", i, c, x, y)
			}
		}
		if a.Stats != b.Stats {
			return fmt.Errorf("window %d stats: %+v vs %+v", i, a.Stats, b.Stats)
		}
		if len(a.Streams) != len(b.Streams) {
			return fmt.Errorf("window %d streams: %d vs %d", i, len(a.Streams), len(b.Streams))
		}
		for s := range a.Streams {
			if a.Streams[s] != b.Streams[s] {
				return fmt.Errorf("window %d stream %d: %+v vs %+v", i, s, a.Streams[s], b.Streams[s])
			}
		}
	}
	return nil
}

func compareStats(a, b transport.QueryStats) error {
	if a != b {
		return fmt.Errorf("final stats: %+v vs %+v", a, b)
	}
	return nil
}

// compareFailoverWindows enforces contract D'': windows the leader
// emitted before its kill are bit-identical to the Engine's prefix, and
// the promoted standby's windows afterwards are an ordered subsequence
// of the Engine's remaining spans, every one honestly flagged Degraded.
//
// Rows are deliberately not compared post-failover: the promoted
// coordinator rebuilds its watermark from post-kill manifests only, so a
// stream that went quiet before the kill no longer holds the minimum
// back — stragglers' tuples can drop late at the shards, and a window
// whose every tuple dropped that way never materializes at all. Spans
// can only come from partials of tuples the Engine also absorbed, so
// the subsequence relation (and the Degraded flag) is what takeover
// guarantees.
func compareFailoverWindows(ew, fw []transport.ResultWindow, pre, shards int) error {
	if pre > len(fw) || pre > len(ew) {
		return fmt.Errorf("pre-kill window count %d exceeds emitted (engine %d, failover %d)", pre, len(ew), len(fw))
	}
	if err := compareWindowLists(ew[:pre], fw[:pre], shards); err != nil {
		return fmt.Errorf("pre-kill prefix: %v", err)
	}
	j := pre
	for _, w := range fw[pre:] {
		if !w.Degraded {
			return fmt.Errorf("post-failover window [%d,%d) not flagged Degraded", w.WindowStart, w.WindowEnd)
		}
		for j < len(ew) && (ew[j].WindowStart != w.WindowStart || ew[j].WindowEnd != w.WindowEnd) {
			j++
		}
		if j == len(ew) {
			return fmt.Errorf("post-failover window [%d,%d) has no Engine counterpart in order", w.WindowStart, w.WindowEnd)
		}
		j++
	}
	return nil
}
