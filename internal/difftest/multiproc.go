package difftest

import (
	"fmt"

	"scrub/internal/central"
	"scrub/internal/coord"
	"scrub/internal/event"
	"scrub/internal/transport"
)

// pipeTopology stands up a real multi-process ScrubCentral in miniature:
// a coordinator, n shard nodes and a host-side router, every hop over the
// in-memory pipe transport through the full wire codec. The differential
// sweep drives it as a third executor next to Engine and ShardedEngine —
// the distributed fabric must be bit-identical to both.
//
// net.Pipe is fully synchronous, so every RPC round-trip is a
// happens-before edge: the single-threaded harness observes the same
// strict batch → shard-apply → manifest → close ordering a production
// deployment gets from the router's synchronous ack protocol.
type pipeTopology struct {
	coord  *coord.Coordinator
	router *coord.Router
	mconn  *transport.Conn
}

// newPipeTopology builds a coordinator + shards fabric. Each shard node
// analyzes query text against its own catalog instance, exactly like a
// separate process would.
func newPipeTopology(shards int, opts central.Options, cat func() *event.Catalog) *pipeTopology {
	t := &pipeTopology{coord: coord.NewCoordinator(opts)}
	mc, ms := transport.Pipe()
	t.mconn = mc
	go t.coord.ServeConn(ms)
	t.router = coord.NewRouter(coord.NewManifestClient(mc), nil)
	for i := 0; i < shards; i++ {
		node := coord.NewShardNode(cat())
		addr := fmt.Sprintf("shard-%d", i)
		cc, cs := transport.Pipe()
		go node.ServeConn(cs)
		t.coord.AddShardConn(cc, addr)
		rc, rs := transport.Pipe()
		go node.ServeConn(rs)
		t.router.AddShardConn(addr, rc)
	}
	return t
}

// start registers the query on the coordinator and pins the router's
// routing to the query's shard-map epoch, the way a host agent would on
// receiving the HostQuery fan-out.
func (t *pipeTopology) start(p central.Plan, emit central.EmitFunc) error {
	if err := t.coord.StartQuery(p, emit); err != nil {
		return err
	}
	epoch, ok := t.coord.QueryEpoch(p.QueryID)
	if !ok {
		return fmt.Errorf("difftest: query %d vanished after StartQuery", p.QueryID)
	}
	t.router.HandleShardMap(t.coord.ShardMap())
	t.router.PinQuery(p.QueryID, epoch)
	return nil
}

// close tears down every connection; the per-connection serve loops exit
// on their next Recv.
func (t *pipeTopology) close() {
	t.router.Close()
	t.coord.Close()
	t.mconn.Close()
}
