package difftest

import (
	"fmt"
	"time"

	"scrub/internal/central"
	"scrub/internal/coord"
	"scrub/internal/event"
	"scrub/internal/transport"
)

// pipeTopology stands up a real multi-process ScrubCentral in miniature:
// a coordinator, n shard nodes and a host-side router, every hop over the
// in-memory pipe transport through the full wire codec. The differential
// sweep drives it as a third executor next to Engine and ShardedEngine —
// the distributed fabric must be bit-identical to both.
//
// net.Pipe is fully synchronous, so every RPC round-trip is a
// happens-before edge: the single-threaded harness observes the same
// strict batch → shard-apply → manifest → close ordering a production
// deployment gets from the router's synchronous ack protocol.
type pipeTopology struct {
	coord  *coord.Coordinator
	router *coord.Router
	mconn  *transport.Conn
}

// newPipeTopology builds a coordinator + shards fabric. Each shard node
// analyzes query text against its own catalog instance, exactly like a
// separate process would.
func newPipeTopology(shards int, opts central.Options, cat func() *event.Catalog) *pipeTopology {
	t := &pipeTopology{coord: coord.NewCoordinator(opts)}
	mc, ms := transport.Pipe()
	t.mconn = mc
	go t.coord.ServeConn(ms)
	t.router = coord.NewRouter(coord.NewManifestClient(mc), nil)
	for i := 0; i < shards; i++ {
		node := coord.NewShardNode(cat())
		addr := fmt.Sprintf("shard-%d", i)
		cc, cs := transport.Pipe()
		go node.ServeConn(cs)
		t.coord.AddShardConn(cc, addr)
		rc, rs := transport.Pipe()
		go node.ServeConn(rs)
		t.router.AddShardConn(addr, rc)
	}
	return t
}

// start registers the query on the coordinator and pins the router's
// routing to the query's shard-map epoch, the way a host agent would on
// receiving the HostQuery fan-out.
func (t *pipeTopology) start(p central.Plan, emit central.EmitFunc) error {
	if err := t.coord.StartQuery(p, emit); err != nil {
		return err
	}
	epoch, ok := t.coord.QueryEpoch(p.QueryID)
	if !ok {
		return fmt.Errorf("difftest: query %d vanished after StartQuery", p.QueryID)
	}
	t.router.HandleShardMap(t.coord.ShardMap())
	t.router.PinQuery(p.QueryID, epoch)
	return nil
}

// close tears down every connection; the per-connection serve loops exit
// on their next Recv.
func (t *pipeTopology) close() {
	t.router.Close()
	t.coord.Close()
	t.mconn.Close()
}

// failoverTopology is the fourth executor arm: the same fabric as
// pipeTopology, but the coordinator replicates its control plane to a
// standby, and the harness kills the leader mid-query. The standby
// promotes under a higher fencing term, resumes the replicated
// registration against the still-live shard nodes, and finishes the
// query — so every sweep seed exercises the takeover path, not just the
// dedicated failover tests.
type failoverTopology struct {
	coord   *coord.Coordinator
	standby *coord.Standby
	router  *coord.Router
	nodes   []*coord.ShardNode

	// manifest is the router's current target; failover() swaps it to the
	// promoted coordinator. The harness is single-threaded, so a plain
	// field suffices.
	manifest coord.ManifestFunc
	mconn    *transport.Conn
	emit     central.EmitFunc
	queryID  uint64
	promoted bool
}

func newFailoverTopology(shards int, opts central.Options, cat func() *event.Catalog) *failoverTopology {
	t := &failoverTopology{coord: coord.NewCoordinator(opts)}
	// Heartbeats an hour out: replication rides the synchronous appends
	// only, so the single-threaded harness stays deterministic.
	t.coord.StartReplication(coord.ReplicationConfig{Term: 1, Heartbeat: time.Hour})
	t.standby = coord.NewStandby(coord.StandbyOptions{
		Central: coordOptions(opts),
		Catalog: cat(),
		Dial: func(addr string) (*transport.Conn, error) {
			for i, node := range t.nodes {
				if addr == fmt.Sprintf("shard-%d", i) {
					cc, cs := transport.Pipe()
					go node.ServeConn(cs)
					return cc, nil
				}
			}
			return nil, fmt.Errorf("difftest: unknown shard %q", addr)
		},
	})
	sbc, sbs := transport.Pipe()
	go t.standby.ServeConn(sbs)
	t.coord.AddStandbyConn(sbc, "standby-0")

	mc, ms := transport.Pipe()
	t.mconn = mc
	go t.coord.ServeConn(ms)
	t.manifest = coord.NewManifestClient(mc)
	t.router = coord.NewRouter(func(m transport.BatchManifest) error {
		return t.manifest(m)
	}, nil)
	for i := 0; i < shards; i++ {
		node := coord.NewShardNode(cat())
		t.nodes = append(t.nodes, node)
		addr := fmt.Sprintf("shard-%d", i)
		cc, cs := transport.Pipe()
		go node.ServeConn(cs)
		t.coord.AddShardConn(cc, addr)
		rc, rs := transport.Pipe()
		go node.ServeConn(rs)
		t.router.AddShardConn(addr, rc)
	}
	return t
}

// coordOptions passes the leader's clock/lease config through to the
// coordinator a promotion builds (the contracts need both on one clock).
func coordOptions(opts central.Options) coord.Options {
	return coord.Options{Clock: opts.Clock, LeaseTTL: opts.LeaseTTL}
}

func (t *failoverTopology) start(p central.Plan, emit central.EmitFunc) error {
	t.emit = emit
	t.queryID = p.QueryID
	if err := t.coord.StartQuery(p, emit); err != nil {
		return err
	}
	epoch, ok := t.coord.QueryEpoch(p.QueryID)
	if !ok {
		return fmt.Errorf("difftest: query %d vanished after StartQuery", p.QueryID)
	}
	t.router.HandleShardMap(t.coord.ShardMap())
	t.router.PinQuery(p.QueryID, epoch)
	return nil
}

// failover kills the leader and promotes the standby. The replicated
// registration must survive: losing it would drop the query on the floor,
// which is exactly the bug class the tentpole exists to prevent.
func (t *failoverTopology) failover() error {
	t.coord.Close()
	t.mconn.Close()
	promoted, resumed, err := t.standby.Promote(
		func(coord.ResumedQuery, *central.Plan) central.EmitFunc { return t.emit })
	if err != nil {
		return fmt.Errorf("difftest: promote: %v", err)
	}
	found := false
	for _, rq := range resumed {
		if rq.QueryID == t.queryID {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("difftest: leader death lost query %d (resumed: %v)", t.queryID, resumed)
	}
	t.coord = promoted
	t.promoted = true
	mc, ms := transport.Pipe()
	t.mconn = mc
	go promoted.ServeConn(ms)
	t.manifest = coord.NewManifestClient(mc)
	t.router.HandleShardMap(promoted.ShardMap())
	return nil
}

func (t *failoverTopology) close() {
	t.router.Close()
	t.coord.Close()
	t.mconn.Close()
}
