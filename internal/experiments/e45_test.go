package experiments

import (
	"testing"
	"time"
)

func TestE4Exclusions(t *testing.T) {
	res, err := E4Exclusions(E4Config{Users: 400, Duration: time.Minute, LineItems: 80})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalJoined == 0 {
		t.Fatal("join produced no rows")
	}
	if len(res.ReasonCounts) < 2 {
		t.Errorf("reason variety too low: %v", res.ReasonCounts)
	}
	// Geo/exchange/segment filtering dominates a fresh portfolio.
	var targeting int64
	for _, reason := range []string{"geo_mismatch", "exchange_mismatch", "segment_mismatch"} {
		targeting += res.ReasonCounts[reason]
	}
	if targeting == 0 {
		t.Errorf("no targeting exclusions: %v", res.ReasonCounts)
	}
	// The scalability contrast: raw ad-server event volume dwarfs joined
	// output rows.
	if res.ExclusionEventsLogged < uint64(res.TotalJoined) {
		t.Errorf("exclusion events %d < joined rows %d?", res.ExclusionEventsLogged, res.TotalJoined)
	}
	if tab := res.Table(); len(tab.Rows) == 0 {
		t.Error("empty table")
	}
}

func TestE5Cannibalization(t *testing.T) {
	res, err := E5Cannibalization(E5Config{Users: 800, Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// The complaint reproduced: λ participates in every auction but
	// never wins.
	if res.LambdaWins != 0 {
		t.Errorf("λ wins = %d, want 0 (cannibalized)", res.LambdaWins)
	}
	if len(res.Winners) == 0 {
		t.Fatal("no winners observed")
	}
	// The diagnosis: every winner's average price sits above λ's band.
	if res.MinWinnerAvg <= res.LambdaBandHigh {
		t.Errorf("min winner avg %.3f should exceed λ's band top %.3f",
			res.MinWinnerAvg, res.LambdaBandHigh)
	}
	// The remediation check: re-run with λ's advisory price raised above
	// the rivals — λ starts winning.
	res2, err := E5Cannibalization(E5Config{Users: 800, Duration: time.Minute, LambdaPrice: 4.0})
	if err != nil {
		t.Fatal(err)
	}
	if res2.LambdaWins == 0 {
		t.Error("after the price bump λ still never wins")
	}
	if tab := res.Table(); len(tab.Rows) < 2 {
		t.Error("table too small")
	}
}
