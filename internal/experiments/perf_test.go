package experiments

import (
	"math"
	"testing"
	"time"
)

func TestP1HostOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	res, err := P1HostOverhead(P1Config{Requests: 8000, QuerySweep: []int{0, 4, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].Queries != 0 || res.Points[0].OverheadPct != 0 {
		t.Errorf("baseline point = %+v", res.Points[0])
	}
	for _, p := range res.Points {
		if p.NsPerReq <= 0 {
			t.Errorf("ns/req = %v", p.NsPerReq)
		}
		// Pathology check only — short timing runs are noisy under test
		// parallelism; the paper's quantitative claim (≤2.5%) is verified
		// with the full-size run in cmd/benchrunner (see EXPERIMENTS.md).
		if p.OverheadPct > 150 {
			t.Errorf("%d queries: overhead %.1f%% is pathological", p.Queries, p.OverheadPct)
		}
	}
	if tab := res.Table(); len(tab.Rows) != 3 {
		t.Error("table rows")
	}
}

func TestPSQueryScale(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	res, err := PSQueryScale(PSConfig{Requests: 6000, QuerySweep: []int{0, 8, 32}, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mixes) != 2 || res.Mixes[0].Name != "overlap" || res.Mixes[1].Name != "distinct" {
		t.Fatalf("mixes = %+v", res.Mixes)
	}
	for _, m := range res.Mixes {
		if len(m.Points) != 3 {
			t.Fatalf("%s: points = %d", m.Name, len(m.Points))
		}
		for _, p := range m.Points {
			if p.NsPerReq <= 0 {
				t.Errorf("%s @%d queries: ns/req = %v", m.Name, p.Queries, p.NsPerReq)
			}
		}
	}
	// Distinct constants must actually be distinct (and parse): spot-check
	// the generator.
	if psDistinctQuery(3, 16) == psDistinctQuery(19, 16) {
		t.Error("distinct mix repeats a predicate constant")
	}
	if tab := res.Table(); len(tab.Rows) != 6 {
		t.Error("table rows")
	}
}

func TestP2RequestLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	res, err := P2RequestLatency(P2Config{Requests: 6000, Queries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Off.Mean <= 0 || res.On.Mean <= 0 {
		t.Fatalf("means = %+v", res)
	}
	if res.Off.P99 < res.Off.P50 || res.On.P99 < res.On.P50 {
		t.Error("percentiles inverted")
	}
	// Pathology check only — see P1's comment about short-run noise; the
	// quantitative claim is verified at full scale in cmd/benchrunner.
	if res.MeanDeltaPct > 200 {
		t.Errorf("latency delta %.1f%% pathological", res.MeanDeltaPct)
	}
	if tab := res.Table(); len(tab.Rows) != 2 {
		t.Error("table rows")
	}
}

func TestP3SamplingAccuracy(t *testing.T) {
	res, err := P3SamplingAccuracy(P3Config{Hosts: 30, PerHost: 200, Trials: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truth <= 0 || len(res.Points) == 0 {
		t.Fatal("degenerate result")
	}
	for _, p := range res.Points {
		if p.Coverage < 0.85 {
			t.Errorf("rates %g/%g: coverage %.2f below nominal band", p.HostRate, p.EventRate, p.Coverage)
		}
		if p.MeanRelErr > 0.5 {
			t.Errorf("rates %g/%g: rel err %.3f too large", p.HostRate, p.EventRate, p.MeanRelErr)
		}
	}
	// Error grows as sampling rates shrink: the full-ish setting beats
	// the sparsest one.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.MeanRelErr >= last.MeanRelErr {
		t.Errorf("error did not grow with sparser sampling: %.4f vs %.4f", first.MeanRelErr, last.MeanRelErr)
	}
	if tab := res.Table(); len(tab.Rows) != len(res.Points) {
		t.Error("table rows")
	}
}

func TestP4CentralThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	res, err := P4CentralThroughput(P4Config{Tuples: 60000, Cardinalities: []int{10, 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 { // select + 2 cardinalities + join + sharded
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.TuplesPerS < 10000 {
			t.Errorf("%s: %.0f tuples/s implausibly low", p.Shape, p.TuplesPerS)
		}
	}
	if tab := res.Table(); len(tab.Rows) != 5 {
		t.Error("table rows")
	}
}

func TestP5VsLogging(t *testing.T) {
	res, err := P5VsLogging(P5Config{Users: 400, Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScrubTuplesShipped == 0 || res.LogEventsShipped == 0 {
		t.Fatalf("degenerate: %+v", res)
	}
	// The architectural claim: logging ships far more bytes.
	if res.BytesRatio < 2 {
		t.Errorf("bytes ratio = %.1f, logging should clearly exceed Scrub", res.BytesRatio)
	}
	// Both sides answer the same question.
	if res.ScrubRows == 0 || res.LogRows == 0 {
		t.Error("one side produced no rows")
	}
	if res.LogScanElapsed <= 0 {
		t.Error("scan latency unmeasured")
	}
	if tab := res.Table(); len(tab.Rows) < 4 {
		t.Error("table rows")
	}
}

func TestP6Sketches(t *testing.T) {
	res, err := P6Sketches(P6Config{StreamLen: 200000, Ks: []int{5, 10}, Cardinalities: []int{1000, 100000}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.TopK {
		if p.Precision < 0.8 {
			t.Errorf("TOP_%d precision %.2f too low", p.K, p.Precision)
		}
		if p.MaxCntErr > 0.2 {
			t.Errorf("TOP_%d count error %.3f too high", p.K, p.MaxCntErr)
		}
	}
	for _, p := range res.HLL {
		if p.RelErr > 6*p.TheoryErr+0.001 {
			t.Errorf("HLL @%d: rel err %.4f vs theory %.4f", p.Cardinality, p.RelErr, p.TheoryErr)
		}
	}
	if math.IsNaN(res.HLL[0].RelErr) {
		t.Error("NaN error")
	}
	if tab := res.Table(); len(tab.Rows) == 0 {
		t.Error("empty table")
	}
}

func TestA1HostVsCentralAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	res, err := A1HostVsCentralAggregation(A1Config{Events: 300000, Cardinalities: []int{100, 100000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	low, high := res.Points[0], res.Points[1]
	// The ablated variant's resident state tracks cardinality; Scrub's
	// host path holds none.
	if high.AblatedGroups <= low.AblatedGroups {
		t.Errorf("ablated groups did not grow with cardinality: %d vs %d",
			low.AblatedGroups, high.AblatedGroups)
	}
	if high.AblatedGroups < 50000 {
		t.Errorf("high-cardinality groups = %d, want ~100k", high.AblatedGroups)
	}
	for _, p := range res.Points {
		if p.ScrubNsPerEvent <= 0 || p.AblatedNsPerEvent <= 0 {
			t.Errorf("degenerate timing: %+v", p)
		}
	}
	if tab := res.Table(); len(tab.Rows) != 2 {
		t.Error("table rows")
	}
}

func TestA2BaggageVsOnDemand(t *testing.T) {
	res, err := A2BaggageVsOnDemand(A2Config{Users: 300, Duration: time.Minute, LineItems: 80})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.BaggageTotal == 0 {
		t.Fatalf("degenerate: %+v", res)
	}
	// Exclusions dominate: baggage per request is hundreds of bytes even
	// at this small portfolio.
	if res.BaggageMeanBytes < 100 {
		t.Errorf("baggage mean = %.0f bytes/request, implausibly small", res.BaggageMeanBytes)
	}
	if res.BaggageP99Bytes < res.BaggageMeanBytes {
		t.Error("p99 below mean")
	}
	if res.ScrubTuples == 0 {
		t.Error("Scrub shipped nothing while the query was active")
	}
	// The architectural point: always-on baggage outweighs on-demand
	// shipping even while the query is running (selection+projection);
	// with the query off the ratio is infinite.
	if res.Ratio < 1 {
		t.Errorf("ratio = %.2f, baggage should exceed Scrub", res.Ratio)
	}
	if tab := res.Table(); len(tab.Rows) < 6 {
		t.Error("table rows")
	}
}
