package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"scrub/internal/central"
	"scrub/internal/chaos"
	"scrub/internal/core"
	"scrub/internal/event"
	"scrub/internal/host"
	"scrub/internal/transport"
)

// C1Config parametrizes the chaos soak: a real-TCP cluster under a
// scripted fault schedule — a lossy, reordering link; a full partition
// with lease expiry and degraded windows; an abrupt connection kill with
// spill-and-redeliver — verifying the failure-domain contract end to
// end. Not a paper table: the paper deployed on a production network and
// never injected faults; this pins the reproduction's liveness layer.
type C1Config struct {
	Hosts    int           // default 3
	Duration time.Duration // soak length; default 12s
	Window   time.Duration // query window; default 500ms
	LeaseTTL time.Duration // stream lease; default 600ms
	Seed     int64         // chaos + jitter seed; default 40917
}

func (c *C1Config) fillDefaults() {
	if c.Hosts < 3 {
		c.Hosts = 3
	}
	if c.Duration == 0 {
		c.Duration = 12 * time.Second
	}
	if c.Window == 0 {
		c.Window = 500 * time.Millisecond
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 600 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 40917
	}
}

// C1Result summarizes the soak.
type C1Result struct {
	Config          C1Config
	Windows         int    // result windows emitted
	DegradedWindows int    // windows flagged degraded
	EvictionsNamed  bool   // every degraded window named host 1 evicted
	LastClean       bool   // final window emitted after heal was clean
	HostDrops       uint64 // final cumulative host-side drops
	LateDrops       uint64 // tuples arriving after their window closed
	SeveredConns    int    // connections Kill() cut
	EventsLogged    uint64 // events offered by the traffic loop
}

// C1ChaosSoak runs the soak. The schedule, scaled to Duration D:
//
//	0.25D  host c1-0 gets a lossy link (drop 30%, dup 10%, reorder 20%)
//	0.40D  host c1-1 is fully partitioned       → lease expiry, degraded
//	0.60D  host c1-1 heals                      → re-admission, clean
//	0.70D  host c1-2's connections are severed  → redial, spill redelivery
//	0.85D  host c1-0 heals
//
// All randomness (fault decisions, reconnect jitter) flows from Seed.
func C1ChaosSoak(cfg C1Config) (*C1Result, error) {
	cfg.fillDefaults()

	cat := event.NewCatalog()
	cat.MustRegister(event.MustSchema("bid",
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
	))
	hosts := make([]core.HostSpec, cfg.Hosts)
	for i := range hosts {
		hosts[i] = core.HostSpec{Name: fmt.Sprintf("c1-%d", i), Service: "BidServers", DC: "DC1"}
	}

	inj := chaos.New(cfg.Seed)
	nc, err := core.NewNetCluster(core.NetConfig{
		Catalog: cat,
		Hosts:   hosts,
		Agent: host.Config{
			FlushInterval:     10 * time.Millisecond,
			HeartbeatInterval: 50 * time.Millisecond,
		},
		Central:  central.Options{LeaseTTL: cfg.LeaseTTL},
		Sink:     host.NetSinkOptions{DialTimeout: 500 * time.Millisecond, SpillLimit: 2048},
		Control:  host.ControlOptions{BaseBackoff: 50 * time.Millisecond, MaxBackoff: 250 * time.Millisecond, Seed: cfg.Seed},
		WrapConn: inj.Wrap,
	})
	if err != nil {
		return nil, err
	}
	defer nc.Close()

	client, err := nc.Client()
	if err != nil {
		return nil, err
	}
	defer client.Close()
	q := fmt.Sprintf("select count(*) from bid window %s duration %s",
		cfg.Window, cfg.Duration+time.Minute)
	qs, err := client.Query(q)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		installed := 0
		for i := 0; i < nc.NumAgents(); i++ {
			if len(nc.Agent(i).ActiveQueries()) > 0 {
				installed++
			}
		}
		if installed == nc.NumAgents() {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("experiments: only %d/%d agents activated", installed, nc.NumAgents())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Traffic: every host logs continuously on wall-clock timestamps.
	schema, _ := cat.Lookup("bid")
	var stop atomic.Bool
	var logged atomic.Uint64
	loggerDone := make(chan struct{})
	go func() {
		defer close(loggerDone)
		var req uint64
		for !stop.Load() {
			now := time.Now()
			for i := 0; i < nc.NumAgents(); i++ {
				req++
				nc.Agent(i).Log(event.NewBuilder(schema).
					SetRequestID(req).SetTime(now).
					Int("user_id", int64(i)).Float("bid_price", 1.25).
					MustBuild())
				logged.Add(1)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Scripted faults, scaled to the soak duration.
	D := cfg.Duration
	severed := make(chan int, 1)
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		lossy := chaos.Faults{DropProb: 0.3, DupProb: 0.1, ReorderProb: 0.2}
		part := chaos.Partitioned()
		inj.Schedule(nil, []chaos.Step{
			{At: D / 4, Host: "c1-0", Faults: &lossy},
			{At: 2 * D / 5, Host: "c1-1", Faults: &part},
			{At: 3 * D / 5, Host: "c1-1"}, // heal
		})
		severed <- inj.Kill("c1-2") // 0.6D has passed; sever and watch it recover
		inj.Schedule(nil, []chaos.Step{
			{At: D / 4, Host: "c1-0"}, // 0.6D + 0.25D = 0.85D: heal the lossy link
		})
	}()
	<-schedDone // blocks until 0.85D has elapsed
	// Run out the rest of the soak plus the lateness tail so post-heal
	// windows actually close clean before we stop.
	time.Sleep(3*D/20 + 3*time.Second)

	stop.Store(true)
	<-loggerDone
	time.Sleep(300 * time.Millisecond)
	if err := qs.Cancel(); err != nil {
		return nil, err
	}
	var wins []transport.ResultWindow
	for rw := range qs.Windows {
		wins = append(wins, rw)
	}
	stats, err := qs.Final()
	if err != nil {
		return nil, err
	}

	res := &C1Result{
		Config:         cfg,
		Windows:        len(wins),
		EvictionsNamed: true,
		HostDrops:      stats.HostDrops,
		LateDrops:      stats.LateDrops,
		SeveredConns:   <-severed,
		EventsLogged:   logged.Load(),
	}
	for _, rw := range wins {
		if !rw.Degraded {
			continue
		}
		res.DegradedWindows++
		named := false
		for _, s := range rw.Streams {
			if s.Evicted && s.HostID == "c1-1" {
				named = true
			}
		}
		if !named {
			res.EvictionsNamed = false
		}
	}
	if len(wins) > 0 {
		res.LastClean = !wins[len(wins)-1].Degraded
	}
	return res, nil
}

// Table renders the soak summary.
func (r *C1Result) Table() *Table {
	t := &Table{
		ID:      "C1",
		Title:   "Chaos soak: lossy link, partition with lease eviction, abrupt kill",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("hosts", fmtI(int64(r.Config.Hosts)))
	t.AddRow("soak duration", r.Config.Duration.String())
	t.AddRow("chaos seed", fmtI(r.Config.Seed))
	t.AddRow("events logged", fmtI(int64(r.EventsLogged)))
	t.AddRow("windows emitted", fmtI(int64(r.Windows)))
	t.AddRow("degraded windows", fmtI(int64(r.DegradedWindows)))
	t.AddRow("degraded windows named evicted host", fmt.Sprintf("%v", r.EvictionsNamed))
	t.AddRow("final window clean after heal", fmt.Sprintf("%v", r.LastClean))
	t.AddRow("host drops (cumulative)", fmtI(int64(r.HostDrops)))
	t.AddRow("late drops", fmtI(int64(r.LateDrops)))
	t.AddRow("connections severed by kill", fmtI(int64(r.SeveredConns)))
	t.Notes = append(t.Notes,
		"windows keep closing through a partitioned host: lease expiry evicts its stream from the watermark",
		"degraded results carry per-stream accounting (matched/sampled/drops/late) for every known stream",
	)
	return t
}
