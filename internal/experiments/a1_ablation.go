package experiments

import (
	"time"

	"scrub/internal/agg"
	"scrub/internal/event"
	"scrub/internal/host"
	"scrub/internal/transport"
)

// A1Config parametrizes the ablation of Scrub's defining execution
// choice (paper §4, §6): joins/group-bys/aggregations run at ScrubCentral,
// never on the hosts. The ablation runs the spam query's host-side work
// both ways on one host:
//
//   - Scrub: selection → projection → enqueue (ship raw tuples);
//   - ablated: maintain the group-by aggregation in the host process
//     (what "push the query to the data" would do), shipping only window
//     summaries.
//
// The ablated variant ships less, but its per-event cost and its memory
// footprint grow with group cardinality — unbounded, query-dependent
// state on a machine with an SLO. Scrub's host cost is flat by design.
type A1Config struct {
	Events        int   // per measurement; default 2_000_000
	Cardinalities []int // distinct users; default {1e2, 1e4, 1e6}
	Seed          int64
}

func (c *A1Config) fillDefaults() {
	if c.Events == 0 {
		c.Events = 2_000_000
	}
	if len(c.Cardinalities) == 0 {
		c.Cardinalities = []int{100, 10000, 250000}
	}
	if c.Seed == 0 {
		c.Seed = 9707
	}
}

// A1Point is one measurement.
type A1Point struct {
	Cardinality       int
	ScrubNsPerEvent   float64
	AblatedNsPerEvent float64
	// AblatedGroups is the host-resident group count at window close —
	// the state the paper refuses to keep on hosts.
	AblatedGroups int
}

// A1Result carries the sweep.
type A1Result struct {
	Config A1Config
	Points []A1Point
}

// A1HostVsCentralAggregation runs the ablation.
func A1HostVsCentralAggregation(cfg A1Config) (*A1Result, error) {
	cfg.fillDefaults()
	schema := event.MustSchema("bid",
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
	)
	catalog := event.NewCatalog()
	catalog.MustRegister(schema)

	res := &A1Result{Config: cfg}
	for _, card := range cfg.Cardinalities {
		// Pre-build the event stream (excluded from both timings). The
		// pool must cover the cardinality so every group actually occurs.
		poolSize := 1 << 18
		if card > poolSize {
			card = poolSize
		}
		events := make([]*event.Event, poolSize)
		for i := range events {
			events[i] = event.NewBuilder(schema).
				SetRequestID(uint64(i)).
				SetTimeNanos(int64(i)+1).
				Int("user_id", int64(i%card)).
				Float("bid_price", 1.5).
				MustBuild()
		}
		mask := poolSize - 1

		// --- Scrub host path: agent with the spam query installed,
		// shipping to a discard sink (central is remote). ---
		agent, err := host.New(host.Config{
			HostID: "h", Service: "S", Catalog: catalog,
			Sink:      host.SinkFunc(func(transport.TupleBatch) error { return nil }),
			QueueSize: 1 << 16,
		})
		if err != nil {
			return nil, err
		}
		if err := agent.Start(transport.HostQuery{
			QueryID: 1, EventType: "bid", Columns: []string{"user_id"},
		}); err != nil {
			agent.Close()
			return nil, err
		}
		start := time.Now()
		for i := 0; i < cfg.Events; i++ {
			agent.Log(events[i&mask])
		}
		scrubNs := float64(time.Since(start).Nanoseconds()) / float64(cfg.Events)
		agent.Close()

		// --- Ablated: host-side group-by COUNT(*) per user, windows
		// rotated every 10s of event time. ---
		groups := make(map[int64]agg.Aggregator)
		maxGroups := 0
		var windowStart int64
		start = time.Now()
		for i := 0; i < cfg.Events; i++ {
			ev := events[i&mask]
			if ev.TimeNanos-windowStart >= int64(10*time.Second) {
				if len(groups) > maxGroups {
					maxGroups = len(groups)
				}
				groups = make(map[int64]agg.Aggregator)
				windowStart = ev.TimeNanos
			}
			user, _ := ev.Get("user_id").AsInt()
			a := groups[user]
			if a == nil {
				a = agg.MustNew(agg.Spec{Kind: agg.KindCountStar})
				groups[user] = a
			}
			a.Add(event.Bool(true))
		}
		if len(groups) > maxGroups {
			maxGroups = len(groups)
		}
		ablatedNs := float64(time.Since(start).Nanoseconds()) / float64(cfg.Events)

		res.Points = append(res.Points, A1Point{
			Cardinality:       card,
			ScrubNsPerEvent:   scrubNs,
			AblatedNsPerEvent: ablatedNs,
			AblatedGroups:     maxGroups,
		})
	}
	return res, nil
}

// Table renders the ablation.
func (r *A1Result) Table() *Table {
	t := &Table{
		ID:      "A1",
		Title:   "Ablation: host-side aggregation vs Scrub's ship-to-central (§4, §6)",
		Columns: []string{"group cardinality", "Scrub host ns/event", "ablated host ns/event", "host-resident groups"},
	}
	for _, p := range r.Points {
		t.AddRow(fmtI(int64(p.Cardinality)), fmtF(p.ScrubNsPerEvent),
			fmtF(p.AblatedNsPerEvent), fmtI(int64(p.AblatedGroups)))
	}
	t.Notes = append(t.Notes,
		"Scrub's host cost is flat in cardinality; the ablated variant's CPU and memory grow with the query's group count — unbounded, query-dependent state on an SLO-bound machine",
		"this is why joins, group-bys and aggregations run only at ScrubCentral")
	return t
}
