package experiments

import (
	"testing"
	"time"
)

func TestE2ExchangeValidation(t *testing.T) {
	res, err := E2ExchangeValidation(E2Config{
		Users:    1500,
		Duration: 2 * time.Minute,
		EnableAt: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approx {
		t.Error("sampled query should be approximate")
	}
	// Established exchanges flow on both sides of the boundary.
	for _, ex := range []string{"1", "2", "3"} {
		before, after := res.CountBeforeAfter(ex)
		if before == 0 || after == 0 {
			t.Errorf("exchange %s: before=%d after=%d, want traffic throughout", ex, before, after)
		}
	}
	// The newcomer: silent before, ramping after — the paper's healthy
	// integration signal.
	before4, after4 := res.CountBeforeAfter("4")
	if before4 != 0 {
		t.Errorf("exchange 4 impressions before onboarding = %d, want 0", before4)
	}
	if after4 == 0 {
		t.Error("exchange 4 shows no impressions after onboarding")
	}
	// Weight 2 vs 1 each: the newcomer should carry a large share.
	_, after1 := res.CountBeforeAfter("1")
	if after4 < after1 {
		t.Errorf("exchange 4 post-onboarding volume (%d) below exchange 1 (%d) despite double weight", after4, after1)
	}
	if tab := res.Table(); len(tab.Rows) < 4 {
		t.Errorf("table rows = %d", len(tab.Rows))
	}
}
