package experiments

import (
	"testing"
	"time"
)

func TestE6FrequencyCap(t *testing.T) {
	res, err := E6FrequencyCap(E6Config{Users: 400, CorruptUsers: 3, Duration: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OverServed) == 0 {
		t.Fatal("no over-served users found")
	}
	// Every over-served user must be one of the corrupted profiles — the
	// cap logic itself is correct (the paper's conclusion).
	for _, u := range res.OverServed {
		if !res.CorruptSet[u.UserID] {
			t.Errorf("healthy user %s over-served %d times: cap logic broken", u.UserID, u.Impressions)
		}
	}
	// And the corrupted users are clearly anomalous versus the healthy
	// population.
	if res.HealthyMax > int64(res.Config.FrequencyCap) {
		t.Errorf("healthy max %d exceeds cap %d", res.HealthyMax, res.Config.FrequencyCap)
	}
	if res.OverServed[0].Impressions < 3 {
		t.Errorf("top over-served user only %d impressions — corruption not visible", res.OverServed[0].Impressions)
	}
	if tab := res.Table(); len(tab.Rows) != len(res.OverServed) {
		t.Error("table row mismatch")
	}
}
