// Package experiments reproduces every table and figure of the paper's
// evaluation (the §8 case studies and the §9/abstract performance
// claims), plus the methodology checks the design rests on (sampling
// error bounds, sketch accuracy, logging comparison). Each experiment is
// a function from a config with sensible defaults to a result carrying
// both structured data (asserted in tests and benchmarks) and a
// printable table (rendered by cmd/benchrunner and EXPERIMENTS.md).
//
// The substrate is the simulated ad platform (internal/adplatform) under
// synthetic-but-shaped traffic (internal/workload); absolute numbers
// differ from Turn's production testbed, but each experiment documents
// the paper's qualitative claim and checks that the reproduction shows
// the same shape.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"scrub/internal/core"
	"scrub/internal/transport"
)

// Table is one printable experiment artifact.
type Table struct {
	ID      string // experiment id, e.g. "E1" or "P3"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// collectStream drains a query stream in the background.
type collectStream struct {
	stream  *core.Stream
	mu      sync.Mutex
	windows []transport.ResultWindow
	done    chan struct{}
}

func newCollect(st *core.Stream) *collectStream {
	c := &collectStream{stream: st, done: make(chan struct{})}
	go func() {
		defer close(c.done)
		for rw := range st.Windows {
			c.mu.Lock()
			c.windows = append(c.windows, rw)
			c.mu.Unlock()
		}
	}()
	return c
}

func (c *collectStream) wait() []transport.ResultWindow {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.windows
}

// RunScenario submits queries against a cluster, runs the traffic
// function, flushes agents, cancels the queries, and returns each
// query's collected windows (in submission order).
func RunScenario(lc *core.LocalCluster, queries []string, traffic func()) ([][]transport.ResultWindow, error) {
	collects := make([]*collectStream, 0, len(queries))
	ids := make([]uint64, 0, len(queries))
	for _, q := range queries {
		st, err := lc.Query(q)
		if err != nil {
			return nil, fmt.Errorf("experiments: submit %q: %w", q, err)
		}
		collects = append(collects, newCollect(st))
		ids = append(ids, st.Info.ID)
	}
	traffic()
	lc.FlushAgents()
	// One extra flush cycle: the first Flush guarantees queue drain, the
	// second guarantees the counter-only heartbeats landed too.
	lc.FlushAgents()
	for _, id := range ids {
		if err := lc.Cancel(id); err != nil {
			return nil, err
		}
	}
	out := make([][]transport.ResultWindow, len(collects))
	for i, c := range collects {
		out[i] = c.wait()
	}
	return out, nil
}

// virtualStart picks the virtual epoch for simulated traffic: slightly in
// the future of the wall clock so the central wall-clock tick never
// declares simulated windows late (see window.Manager.ForceBefore).
func virtualStart() time.Time {
	return time.Now().Add(5 * time.Second)
}

// fmtF renders a float compactly.
func fmtF(x float64) string { return fmt.Sprintf("%.4g", x) }

// fmtI renders an int.
func fmtI(x int64) string { return fmt.Sprintf("%d", x) }
