package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"scrub/internal/sketch"
)

// P6Config parametrizes the probabilistic-aggregate validation (§3.2):
// TOP-K precision/recall on Zipf streams via SpaceSaving, and
// COUNT_DISTINCT relative error via HyperLogLog across cardinalities.
type P6Config struct {
	StreamLen     int     // TOP-K stream length; default 500000
	ZipfS         float64 // skew; default 1.2
	ZipfN         uint64  // item universe; default 100000
	Ks            []int   // K sweep; default {5, 10, 50}
	Capacity      int     // SpaceSaving counters; default 8*K
	Cardinalities []int   // HLL sweep; default {1e3, 1e4, 1e5, 1e6}
	HLLPrecision  uint8   // default 14
	Seed          int64
}

func (c *P6Config) fillDefaults() {
	if c.StreamLen == 0 {
		c.StreamLen = 500000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.ZipfN == 0 {
		c.ZipfN = 100000
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{5, 10, 50}
	}
	if len(c.Cardinalities) == 0 {
		c.Cardinalities = []int{1000, 10000, 100000, 1000000}
	}
	if c.HLLPrecision == 0 {
		c.HLLPrecision = sketch.DefaultHLLPrecision
	}
	if c.Seed == 0 {
		c.Seed = 9606
	}
}

// P6TopKPoint is one TOP-K measurement.
type P6TopKPoint struct {
	K         int
	Precision float64 // |reported ∩ true| / K
	MaxCntErr float64 // max relative count error among true-positives
}

// P6HLLPoint is one COUNT_DISTINCT measurement.
type P6HLLPoint struct {
	Cardinality int
	RelErr      float64
	TheoryErr   float64 // 1.04/sqrt(m)
}

// P6Result carries both sweeps.
type P6Result struct {
	Config P6Config
	TopK   []P6TopKPoint
	HLL    []P6HLLPoint
}

// P6Sketches runs the validation.
func P6Sketches(cfg P6Config) (*P6Result, error) {
	cfg.fillDefaults()
	res := &P6Result{Config: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// --- TOP-K ---
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, cfg.ZipfN)
	truth := make(map[string]uint64)
	stream := make([]string, cfg.StreamLen)
	for i := range stream {
		item := fmt.Sprintf("item-%d", zipf.Uint64())
		stream[i] = item
		truth[item]++
	}
	type tc struct {
		item string
		n    uint64
	}
	trueSorted := make([]tc, 0, len(truth))
	for it, n := range truth {
		trueSorted = append(trueSorted, tc{it, n})
	}
	sort.Slice(trueSorted, func(i, j int) bool {
		if trueSorted[i].n != trueSorted[j].n {
			return trueSorted[i].n > trueSorted[j].n
		}
		return trueSorted[i].item < trueSorted[j].item
	})
	for _, k := range cfg.Ks {
		capn := cfg.Capacity
		if capn == 0 {
			capn = 8 * k
		}
		ss, err := sketch.NewSpaceSaving(capn)
		if err != nil {
			return nil, err
		}
		for _, it := range stream {
			ss.Add(it)
		}
		reported := ss.Top(k)
		trueSet := make(map[string]uint64, k)
		for i := 0; i < k && i < len(trueSorted); i++ {
			trueSet[trueSorted[i].item] = trueSorted[i].n
		}
		hits := 0
		maxErr := 0.0
		for _, e := range reported {
			tn, ok := trueSet[e.Item]
			if !ok {
				continue
			}
			hits++
			if tn > 0 {
				rel := math.Abs(float64(e.Count)-float64(tn)) / float64(tn)
				if rel > maxErr {
					maxErr = rel
				}
			}
		}
		res.TopK = append(res.TopK, P6TopKPoint{
			K: k, Precision: float64(hits) / float64(k), MaxCntErr: maxErr,
		})
	}

	// --- COUNT_DISTINCT ---
	for _, card := range cfg.Cardinalities {
		h, err := sketch.NewHLL(cfg.HLLPrecision)
		if err != nil {
			return nil, err
		}
		for i := 0; i < card; i++ {
			h.AddUint64(rng.Uint64())
		}
		est := float64(h.Estimate())
		res.HLL = append(res.HLL, P6HLLPoint{
			Cardinality: card,
			RelErr:      math.Abs(est-float64(card)) / float64(card),
			TheoryErr:   h.StdError(),
		})
	}
	return res, nil
}

// Table renders both sweeps.
func (r *P6Result) Table() *Table {
	t := &Table{
		ID:      "P6",
		Title:   "Probabilistic aggregates (§3.2): TOP_K (SpaceSaving) and COUNT_DISTINCT (HyperLogLog)",
		Columns: []string{"measurement", "value"},
	}
	for _, p := range r.TopK {
		t.AddRow(fmt.Sprintf("TOP_%d precision", p.K), fmt.Sprintf("%.2f", p.Precision))
		t.AddRow(fmt.Sprintf("TOP_%d max count error", p.K), fmt.Sprintf("%.3f", p.MaxCntErr))
	}
	for _, p := range r.HLL {
		t.AddRow(fmt.Sprintf("COUNT_DISTINCT rel. error @ %d", p.Cardinality),
			fmt.Sprintf("%.4f (theory σ %.4f)", p.RelErr, p.TheoryErr))
	}
	t.Notes = append(t.Notes,
		"bounded-memory summaries: accuracy traded for fixed footprint at ScrubCentral",
	)
	return t
}
