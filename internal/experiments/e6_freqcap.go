package experiments

import (
	"fmt"
	"sort"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/host"
	"scrub/internal/workload"
)

// E6Config parametrizes the §8.6 incorrectly-set-field study: a campaign
// capped at one ad per user per day serves some users far more often.
// The cause in the paper was erroneous input data corrupting profile
// frequency state, not a code bug; the experiment injects exactly that —
// an external feed periodically clobbers some users' serve counts — and
// uses Scrub to find the over-served users and the corrupt counts.
type E6Config struct {
	Users        int           // default 600
	CorruptUsers int           // default 4
	Duration     time.Duration // default 2m
	FrequencyCap int           // default 1
	LineItemID   int64         // default 5151
	Seed         int64
}

func (c *E6Config) fillDefaults() {
	if c.Users == 0 {
		c.Users = 600
	}
	if c.CorruptUsers == 0 {
		c.CorruptUsers = 4
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Minute
	}
	if c.FrequencyCap == 0 {
		c.FrequencyCap = 1
	}
	if c.LineItemID == 0 {
		c.LineItemID = 5151
	}
	if c.Seed == 0 {
		c.Seed = 8606
	}
}

// E6User is one over-served user found by the query.
type E6User struct {
	UserID      string
	Impressions int64
	// MaxServeCount is the highest serve_count field observed in the
	// user's impression events — for corrupt users this stays at or
	// below the cap (or jumps erratically) while impressions pile up.
	MaxServeCount int64
}

// E6Result carries the diagnosis.
type E6Result struct {
	Config E6Config
	// OverServed: users whose impression count for the capped line item
	// exceeded the frequency cap, sorted by impressions desc.
	OverServed []E6User
	// CorruptSet is the ground-truth corrupted user ids (for
	// verification).
	CorruptSet map[string]bool
	// HealthyMax is the maximum impressions any healthy user received.
	HealthyMax int64
}

// E6FrequencyCap runs the experiment.
func E6FrequencyCap(cfg E6Config) (*E6Result, error) {
	cfg.fillDefaults()

	capped := &adplatform.LineItem{
		ID: cfg.LineItemID, CampaignID: 3, AdvisoryPrice: 3.0,
		FrequencyCap: cfg.FrequencyCap,
	}
	capped.SetBudget(1e9)
	items := append([]*adplatform.LineItem{capped}, adplatform.GenerateLineItems(20, cfg.Seed)...)

	platform, err := adplatform.New(adplatform.Config{
		NumBidServers: 2, NumAdServers: 2, NumPresentationServers: 2,
		LineItems:       items,
		ExternalWinRate: 1.0, // every bid serves: the cap is the only brake
		Agent:           host.Config{FlushInterval: 10 * time.Millisecond, QueueSize: 1 << 16},
	})
	if err != nil {
		return nil, err
	}
	defer platform.Close()

	start := virtualStart()
	gen, err := workload.NewGenerator(workload.Spec{
		Seed: cfg.Seed, NumUsers: cfg.Users, MeanPageViewsPerMin: 4,
	}, start)
	if err != nil {
		return nil, err
	}
	gen.InstallProfiles(platform.Store)

	// Ground truth: the corrupt feed hits the first CorruptUsers ids.
	res := &E6Result{Config: cfg, CorruptSet: make(map[string]bool)}
	corrupt := make([]int64, 0, cfg.CorruptUsers)
	for u := int64(0); u < int64(cfg.CorruptUsers); u++ {
		corrupt = append(corrupt, u)
		res.CorruptSet[fmt.Sprint(u)] = true
	}

	// The troubleshooter's query: impressions of the capped line item per
	// user — users over the cap are the anomaly. serve_count rides along
	// as evidence of the corrupt profile state.
	query := fmt.Sprintf(
		`select impression.user_id, count(*), max(impression.serve_count) from impression where impression.line_item_id = %d group by impression.user_id window 10m duration 1h @[Service in PresentationServers]`,
		cfg.LineItemID)
	wins, err := RunScenario(platform.Cluster, []string{query}, func() {
		n := 0
		gen.Run(cfg.Duration, func(r adplatform.BidRequest) {
			platform.Process(r)
			n++
			if n%50 == 0 {
				// The erroneous input feed: periodically clobbers the
				// corrupt users' serve counts back to zero-ish state.
				for _, u := range corrupt {
					platform.Store.CorruptServeCounts(u, map[int64]int{int64(cfg.LineItemID): -1000}, time.Unix(0, r.TimeNanos))
				}
			}
		})
	})
	if err != nil {
		return nil, err
	}

	perUser := make(map[string]*E6User)
	for _, rw := range wins[0] {
		for _, row := range rw.Rows {
			id := row[0].String()
			n, _ := row[1].AsInt()
			maxServe, _ := row[2].AsInt()
			u := perUser[id]
			if u == nil {
				u = &E6User{UserID: id}
				perUser[id] = u
			}
			u.Impressions += n
			if maxServe > u.MaxServeCount {
				u.MaxServeCount = maxServe
			}
		}
	}
	for _, u := range perUser {
		if u.Impressions > int64(cfg.FrequencyCap) {
			res.OverServed = append(res.OverServed, *u)
		} else if u.Impressions > res.HealthyMax {
			res.HealthyMax = u.Impressions
		}
	}
	sort.Slice(res.OverServed, func(i, j int) bool {
		return res.OverServed[i].Impressions > res.OverServed[j].Impressions
	})
	return res, nil
}

// Table renders the over-served users.
func (r *E6Result) Table() *Table {
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("Incorrectly set field (§8.6): users over the frequency cap (%d/day)", r.Config.FrequencyCap),
		Columns: []string{"user", "impressions", "max serve_count seen", "corrupt profile?"},
	}
	for _, u := range r.OverServed {
		t.AddRow(u.UserID, fmtI(u.Impressions), fmtI(u.MaxServeCount),
			fmt.Sprint(r.CorruptSet[u.UserID]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("healthy users max impressions: %d (cap %d)", r.HealthyMax, r.Config.FrequencyCap),
		"paper: the root cause was erroneous input data corrupting profile frequency state — found by querying, not by code changes")
	return t
}
