package experiments

import (
	"fmt"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/event"
	"scrub/internal/host"
	"scrub/internal/stats"
	"scrub/internal/workload"
)

// A2Config parametrizes the baggage-propagation comparison the paper makes
// in §8.4: Pivot-Tracing-style causal baggage would have to carry every
// exclusion from the AdServers back through the request path — "the
// baggage would have to include all these exclusions" — on every request,
// whether or not anyone is troubleshooting. Scrub ships exclusion data
// only while a query is active, already filtered and projected.
//
// The experiment runs the same bidding workload and measures:
//   - baggage bytes per request (every exclusion event, serialized — what
//     the request would carry);
//   - Scrub bytes per request while the §8.4 query is active (projected
//     exclusion tuples for one exchange), and zero when it is not.
type A2Config struct {
	Users     int           // default 600
	Duration  time.Duration // default 90s
	LineItems int           // default 150 (exclusions per request scale with this)
	Seed      int64
}

func (c *A2Config) fillDefaults() {
	if c.Users == 0 {
		c.Users = 600
	}
	if c.Duration == 0 {
		c.Duration = 90 * time.Second
	}
	if c.LineItems == 0 {
		c.LineItems = 150
	}
	if c.Seed == 0 {
		c.Seed = 9808
	}
}

// A2Result carries the comparison.
type A2Result struct {
	Config   A2Config
	Requests int

	// Baggage side: per-request payload statistics.
	BaggageMeanBytes float64
	BaggageP99Bytes  float64
	BaggageTotal     uint64

	// Scrub side: bytes shipped for the §8.4 exclusion query while it ran.
	ScrubTuples uint64
	ScrubBytes  uint64

	// Ratio of always-on baggage volume to on-demand Scrub volume.
	Ratio float64
}

// A2BaggageVsOnDemand runs the comparison.
func A2BaggageVsOnDemand(cfg A2Config) (*A2Result, error) {
	cfg.fillDefaults()
	platform, err := adplatform.New(adplatform.Config{
		NumBidServers: 2, NumAdServers: 2, NumPresentationServers: 2,
		LineItems:      adplatform.GenerateLineItems(cfg.LineItems, cfg.Seed),
		EmitExclusions: true,
		Agent:          host.Config{FlushInterval: 10 * time.Millisecond, QueueSize: 1 << 18, BatchSize: 1024},
	})
	if err != nil {
		return nil, err
	}
	defer platform.Close()

	gen, err := workload.NewGenerator(workload.Spec{
		Seed: cfg.Seed, NumUsers: cfg.Users, MeanPageViewsPerMin: 3,
		Exchanges: []workload.Exchange{{ID: 1, Weight: 1}, {ID: 2, Weight: 1}},
	}, virtualStart())
	if err != nil {
		return nil, err
	}
	gen.InstallProfiles(platform.Store)

	// The §8.4 on-demand query (selection on one exchange, projection to
	// the reason field) — Scrub's cost while troubleshooting.
	query := `select exclusion.reason, count(*) from bid, exclusion where bid.exchange_id = 2 group by exclusion.reason window 30s duration 1h @[all]`

	res := &A2Result{Config: cfg}
	var perRequest stats.Running
	var p99Samples []float64

	_, err = RunScenario(platform.Cluster, []string{query}, func() {
		res.Requests = gen.Run(cfg.Duration, func(r adplatform.BidRequest) {
			// The platform call produces exclusion events via the agents
			// (Scrub's path). For the baggage model, serialize the same
			// exclusions as the request-carried payload they would be.
			_, as, _ := platformRoute(platform, r)
			auction := as.RunAuction(r)
			var bytes int
			for _, ex := range auction.Exclusions {
				ev := event.NewBuilder(adplatform.ExclusionEventSchema).
					SetRequestID(r.RequestID).SetTimeNanos(r.TimeNanos).
					Int("line_item_id", ex.LineItemID).
					Str("reason", string(ex.Reason)).
					Int("exchange_id", r.ExchangeID).
					Int("publisher_id", r.PublisherID).
					MustBuild()
				bytes += len(event.AppendEvent(nil, ev))
			}
			perRequest.Add(float64(bytes))
			p99Samples = append(p99Samples, float64(bytes))
			res.BaggageTotal += uint64(bytes)
			// Complete the pipeline so Scrub's side sees the same events.
			bs := platform.BidServers[int(r.RequestID%uint64(len(platform.BidServers)))]
			if resp, ok := bs.Respond(r, auction, as.Model().Name()); ok {
				ps := platform.PresServers[int(uint64(r.UserID)%uint64(len(platform.PresServers)))]
				ps.HandleBid(r, resp, auction.Winner.LineItem, as.Model())
			}
		})
	})
	if err != nil {
		return nil, err
	}

	res.BaggageMeanBytes = perRequest.Mean()
	res.BaggageP99Bytes = stats.Percentile(p99Samples, 99)
	for _, as := range platform.AdServers {
		res.ScrubTuples += as.Agent().Stats().Shipped
	}
	for _, bs := range platform.BidServers {
		res.ScrubTuples += bs.Agent().Stats().Shipped
	}
	// Approximate Scrub wire bytes: system fields + one short string or
	// int per tuple plus batch overhead.
	res.ScrubBytes = res.ScrubTuples * 40
	if res.ScrubBytes > 0 {
		res.Ratio = float64(res.BaggageTotal) / float64(res.ScrubBytes)
	}
	return res, nil
}

// platformRoute mirrors Platform.route for the experiment (route is
// unexported; the experiment needs the ad server to model baggage at the
// point the exclusions are produced).
func platformRoute(p *adplatform.Platform, r adplatform.BidRequest) (*adplatform.BidServer, *adplatform.AdServer, *adplatform.PresentationServer) {
	bs := p.BidServers[int(r.RequestID%uint64(len(p.BidServers)))]
	as := p.AdServers[int(uint64(r.UserID)%uint64(len(p.AdServers)))]
	ps := p.PresServers[int(uint64(r.UserID)%uint64(len(p.PresServers)))]
	return bs, as, ps
}

// Table renders the comparison.
func (r *A2Result) Table() *Table {
	t := &Table{
		ID:      "A2",
		Title:   "Baggage propagation vs Scrub on-demand (§8.4, §10 contrast)",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("requests", fmtI(int64(r.Requests)))
	t.AddRow("baggage bytes/request (mean)", fmtF(r.BaggageMeanBytes))
	t.AddRow("baggage bytes/request (p99)", fmtF(r.BaggageP99Bytes))
	t.AddRow("baggage total (always-on)", fmtI(int64(r.BaggageTotal)))
	t.AddRow("Scrub tuples shipped (query active)", fmtI(int64(r.ScrubTuples)))
	t.AddRow("Scrub bytes shipped (approx)", fmtI(int64(r.ScrubBytes)))
	t.AddRow("byte ratio while the query runs", fmt.Sprintf("%.1f×", r.Ratio))
	// The decisive number: baggage is always on, Scrub only runs while a
	// troubleshooter is looking. At a 1% troubleshooting duty cycle the
	// amortized gap is two orders of magnitude wider.
	t.AddRow("byte ratio at 1% troubleshooting duty cycle", fmt.Sprintf("%.0f×", r.Ratio*100))
	t.Notes = append(t.Notes,
		"baggage rides on every request forever; Scrub pays only while a query runs, and only for the selected exchange and projected field",
		"with production line-item counts (tens of thousands of exclusions per request, §8.4) the baggage per request reaches megabytes — inside a 20ms transaction")
	return t
}
