package experiments

import (
	"fmt"
	"sort"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/host"
	"scrub/internal/workload"
)

// E2Config parametrizes the §8.2 new-exchange validation (Figures 11–12):
// impressions per exchange over time, sampled at 10% of PresentationServers
// and 10% of events, with a new exchange coming online mid-run.
type E2Config struct {
	PresentationServers int           // default 10 (so 10% host sampling = 1)
	Users               int           // default 2000
	Duration            time.Duration // default 4m
	EnableAt            time.Duration // new exchange onboarding; default half-run
	Window              time.Duration // default 10s
	SampleHostsPct      float64       // default 10
	SampleEventsPct     float64       // default 10
	Seed                int64
}

func (c *E2Config) fillDefaults() {
	if c.PresentationServers == 0 {
		c.PresentationServers = 10
	}
	if c.Users == 0 {
		c.Users = 2000
	}
	if c.Duration == 0 {
		c.Duration = 4 * time.Minute
	}
	if c.EnableAt == 0 {
		c.EnableAt = c.Duration / 2
	}
	if c.Window == 0 {
		c.Window = 10 * time.Second
	}
	if c.SampleHostsPct == 0 {
		c.SampleHostsPct = 10
	}
	if c.SampleEventsPct == 0 {
		c.SampleEventsPct = 10
	}
	if c.Seed == 0 {
		c.Seed = 8202
	}
}

// E2Point is one (window, exchange) series sample.
type E2Point struct {
	WindowStart int64
	ExchangeID  string
	Count       int64 // scaled-up estimate
}

// E2Result carries the per-exchange impression series.
type E2Result struct {
	Config     E2Config
	Series     []E2Point
	ByExchange map[string][]E2Point
	// EnableBoundary is the virtual nanosecond when the new exchange
	// (id 4) enabled.
	EnableBoundary int64
	Approx         bool
}

// E2ExchangeValidation runs the experiment.
func E2ExchangeValidation(cfg E2Config) (*E2Result, error) {
	cfg.fillDefaults()
	// Durable budgets: this experiment measures exchange integration, not
	// budget pacing — exhausted line items would silently starve the
	// impression stream mid-run.
	items := adplatform.GenerateLineItems(80, cfg.Seed)
	for _, li := range items {
		li.SetBudget(1e9)
	}
	platform, err := adplatform.New(adplatform.Config{
		NumBidServers: 4, NumAdServers: 4,
		NumPresentationServers: cfg.PresentationServers,
		LineItems:              items,
		ExternalWinRate:        0.25, // enough impressions to see the ramp through 10% sampling
		Agent:                  host.Config{FlushInterval: 10 * time.Millisecond, QueueSize: 1 << 16},
	})
	if err != nil {
		return nil, err
	}
	defer platform.Close()

	start := virtualStart()
	gen, err := workload.NewGenerator(workload.Spec{
		Seed: cfg.Seed, NumUsers: cfg.Users, MeanPageViewsPerMin: 4,
		Exchanges: []workload.Exchange{
			{ID: 1, Weight: 1},
			{ID: 2, Weight: 1},
			{ID: 3, Weight: 1},
			{ID: 4, Weight: 2, EnableAt: cfg.EnableAt}, // the newcomer
		},
	}, start)
	if err != nil {
		return nil, err
	}
	gen.InstallProfiles(platform.Store)

	// The paper's Figure 11 query.
	query := fmt.Sprintf(
		`select impression.exchange_id, count(*) from impression group by impression.exchange_id window %s duration 1h @[Service in PresentationServers and DC = DC1] sample hosts %g%% events %g%%`,
		cfg.Window, cfg.SampleHostsPct, cfg.SampleEventsPct)
	wins, err := RunScenario(platform.Cluster, []string{query}, func() {
		gen.Run(cfg.Duration, func(r adplatform.BidRequest) { platform.Process(r) })
	})
	if err != nil {
		return nil, err
	}

	res := &E2Result{
		Config:         cfg,
		ByExchange:     make(map[string][]E2Point),
		EnableBoundary: start.Add(cfg.EnableAt).UnixNano(),
	}
	for _, rw := range wins[0] {
		res.Approx = res.Approx || rw.Approx
		for _, row := range rw.Rows {
			n, _ := row[1].AsInt()
			p := E2Point{WindowStart: rw.WindowStart, ExchangeID: row[0].String(), Count: n}
			res.Series = append(res.Series, p)
			res.ByExchange[p.ExchangeID] = append(res.ByExchange[p.ExchangeID], p)
		}
	}
	sort.Slice(res.Series, func(i, j int) bool {
		if res.Series[i].WindowStart != res.Series[j].WindowStart {
			return res.Series[i].WindowStart < res.Series[j].WindowStart
		}
		return res.Series[i].ExchangeID < res.Series[j].ExchangeID
	})
	return res, nil
}

// CountBeforeAfter sums an exchange's estimated impressions in windows
// entirely before vs entirely after the onboarding boundary. Windows
// straddling the boundary (window alignment is epoch-based, the
// onboarding moment is not) belong to neither side.
func (r *E2Result) CountBeforeAfter(exchange string) (before, after int64) {
	win := int64(r.Config.Window)
	for _, p := range r.ByExchange[exchange] {
		switch {
		case p.WindowStart+win <= r.EnableBoundary:
			before += p.Count
		case p.WindowStart >= r.EnableBoundary:
			after += p.Count
		}
	}
	return
}

// Table renders the Figure-12 series (bucketed into phases for text
// output).
func (r *E2Result) Table() *Table {
	t := &Table{
		ID:      "E2",
		Title:   "New-exchange validation (§8.2, Figs. 11–12): est. impressions per exchange",
		Columns: []string{"exchange", "before onboarding", "after onboarding"},
	}
	var exchanges []string
	for e := range r.ByExchange {
		exchanges = append(exchanges, e)
	}
	sort.Strings(exchanges)
	for _, e := range exchanges {
		b, a := r.CountBeforeAfter(e)
		t.AddRow(e, fmtI(b), fmtI(a))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("sampling: hosts %g%%, events %g%% (approx=%v); counts are scaled estimates",
			r.Config.SampleHostsPct, r.Config.SampleEventsPct, r.Approx),
		"paper: exchange D shows zero impressions until onboarding, then a healthy ramp — realtime validation while in production")
	return t
}
