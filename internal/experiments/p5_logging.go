package experiments

import (
	"fmt"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/event"
	"scrub/internal/host"
	"scrub/internal/logbase"
	"scrub/internal/workload"
)

// P5Config parametrizes the Scrub-vs-logging comparison (§1, §8.1's cost
// contrast): the same workload and the same troubleshooting question,
// answered (a) by Scrub — selection, projection and sampling on hosts,
// results online — and (b) by full-event logging plus a batch scan.
type P5Config struct {
	Users    int           // default 1000
	Duration time.Duration // default 2m
	Seed     int64
}

func (c *P5Config) fillDefaults() {
	if c.Users == 0 {
		c.Users = 1000
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 9505
	}
}

// P5Result contrasts the two architectures on one workload + query.
type P5Result struct {
	Config P5Config
	Query  string

	// Scrub side.
	ScrubTuplesShipped uint64
	ScrubBytesShipped  uint64
	ScrubWindows       int
	ScrubRows          int

	// Logging side.
	LogEventsShipped uint64
	LogBytesShipped  uint64
	LogScanElapsed   time.Duration
	LogRows          int

	// BytesRatio = logging bytes / Scrub bytes.
	BytesRatio float64
}

// P5VsLogging runs the comparison. The question asked is the spam query:
// per-user bid counts — which needs only user_id from bid events, while
// the platform also produces impression/click/auction events that logging
// must retain because "queries are not known a priori".
func P5VsLogging(cfg P5Config) (*P5Result, error) {
	cfg.fillDefaults()
	res := &P5Result{Config: cfg}
	res.Query = `select bid.user_id, count(*) from bid group by bid.user_id window 10s duration 1h @[Service in BidServers]`

	// --- Scrub side ---
	{
		platform, err := adplatform.New(adplatform.Config{
			NumBidServers: 2, NumAdServers: 2, NumPresentationServers: 2,
			LineItems: adplatform.GenerateLineItems(60, cfg.Seed),
			Agent:     host.Config{FlushInterval: 10 * time.Millisecond, QueueSize: 1 << 16},
		})
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(workload.Spec{
			Seed: cfg.Seed, NumUsers: cfg.Users, MeanPageViewsPerMin: 3,
		}, virtualStart())
		if err != nil {
			platform.Close()
			return nil, err
		}
		gen.InstallProfiles(platform.Store)
		wins, err := RunScenario(platform.Cluster, []string{res.Query}, func() {
			gen.Run(cfg.Duration, func(r adplatform.BidRequest) { platform.Process(r) })
		})
		if err != nil {
			platform.Close()
			return nil, err
		}
		for _, bs := range platform.BidServers {
			st := bs.Agent().Stats()
			res.ScrubTuplesShipped += st.Shipped
		}
		// Per-tuple wire cost for this projection: request id + ts + one
		// int value, plus amortized batch framing.
		perTuple := uint64(8 + 8 + 1 + 9)
		res.ScrubBytesShipped = res.ScrubTuplesShipped * perTuple
		res.ScrubWindows = len(wins[0])
		for _, rw := range wins[0] {
			res.ScrubRows += len(rw.Rows)
		}
		platform.Close()
	}

	// --- Logging side: same traffic, every event fully shipped ---
	{
		platform, err := adplatform.New(adplatform.Config{
			NumBidServers: 2, NumAdServers: 2, NumPresentationServers: 2,
			LineItems: adplatform.GenerateLineItems(60, cfg.Seed),
			Agent:     host.Config{FlushInterval: 10 * time.Millisecond, QueueSize: 1 << 16},
		})
		if err != nil {
			return nil, err
		}
		defer platform.Close()
		gen, err := workload.NewGenerator(workload.Spec{
			Seed: cfg.Seed, NumUsers: cfg.Users, MeanPageViewsPerMin: 3,
		}, virtualStart())
		if err != nil {
			return nil, err
		}
		gen.InstallProfiles(platform.Store)

		store := logbase.NewLogStore()
		loggers := make(map[string]*logbase.Logger)
		tap := func(agent interface {
			ID() string
			Catalog() *event.Catalog
		}) *logbase.Logger {
			l, ok := loggers[agent.ID()]
			if !ok {
				l = logbase.NewLogger(agent.ID(), store)
				loggers[agent.ID()] = l
			}
			return l
		}
		// Mirror every platform event into the log, as a logging-based
		// deployment would.
		gen.Run(cfg.Duration, func(r adplatform.BidRequest) {
			resp, out, ok := platform.Process(r)
			// Reconstruct the events logging must retain: the bid, the
			// impression, the click. (Exclusions/auctions are off in this
			// config for both sides, keeping the comparison apples-to-
			// apples.)
			if !ok {
				return
			}
			bidAgent := platform.BidServers[int(r.RequestID%uint64(len(platform.BidServers)))].Agent()
			tap(bidAgent).Log(mustBuildBid(r, resp))
			if out.Impression {
				presAgent := platform.PresServers[int(uint64(r.UserID)%uint64(len(platform.PresServers)))].Agent()
				tap(presAgent).Log(mustBuildImpression(r, resp, out))
			}
		})
		res.LogEventsShipped = uint64(store.Len())
		res.LogBytesShipped = store.Bytes()

		scan, err := store.RunQuery(res.Query, platform.Catalog)
		if err != nil {
			return nil, err
		}
		res.LogScanElapsed = scan.Elapsed
		for _, rw := range scan.Windows {
			res.LogRows += len(rw.Rows)
		}
	}

	if res.ScrubBytesShipped > 0 {
		res.BytesRatio = float64(res.LogBytesShipped) / float64(res.ScrubBytesShipped)
	}
	return res, nil
}

func mustBuildBid(r adplatform.BidRequest, resp adplatform.BidResponse) *event.Event {
	return event.NewBuilder(adplatform.BidEventSchema).
		SetRequestID(r.RequestID).SetTimeNanos(r.TimeNanos).
		Int("exchange_id", r.ExchangeID).
		Int("user_id", r.UserID).
		Str("city", r.City).
		Str("country", r.Country).
		Float("bid_price", resp.BidPrice).
		Int("campaign_id", resp.CampaignID).
		Int("line_item_id", resp.LineItemID).
		Str("model", resp.ModelName).
		MustBuild()
}

func mustBuildImpression(r adplatform.BidRequest, resp adplatform.BidResponse, out adplatform.Outcome) *event.Event {
	return event.NewBuilder(adplatform.ImpressionEventSchema).
		SetRequestID(r.RequestID).SetTimeNanos(r.TimeNanos).
		Int("line_item_id", resp.LineItemID).
		Int("exchange_id", r.ExchangeID).
		Int("user_id", r.UserID).
		Float("cost", out.Cost).
		Str("model", resp.ModelName).
		Int("serve_count", int64(out.ServeCount)).
		MustBuild()
}

// Table renders the contrast.
func (r *P5Result) Table() *Table {
	t := &Table{
		ID:      "P5",
		Title:   "Scrub vs full-event logging on the spam query (§1, §8.1 contrast)",
		Columns: []string{"metric", "Scrub", "logging"},
	}
	t.AddRow("events/tuples shipped", fmtI(int64(r.ScrubTuplesShipped)), fmtI(int64(r.LogEventsShipped)))
	t.AddRow("bytes shipped", fmtI(int64(r.ScrubBytesShipped)), fmtI(int64(r.LogBytesShipped)))
	t.AddRow("result rows", fmtI(int64(r.ScrubRows)), fmtI(int64(r.LogRows)))
	t.AddRow("answer arrives", "online, per window", fmt.Sprintf("after batch scan (%.1fms)", float64(r.LogScanElapsed.Microseconds())/1000))
	t.Notes = append(t.Notes,
		fmt.Sprintf("logging ships %.1f× the bytes for this query", r.BytesRatio),
		"the gap widens with schema width and with queries that select narrowly — logging must retain everything because queries are not known a priori")
	return t
}
