package experiments

import (
	"strings"
	"testing"
	"time"

	"scrub/internal/workload"
)

func TestE1SpamDetection(t *testing.T) {
	res, err := E1SpamDetection(E1Config{
		Users:    400,
		Duration: 90 * time.Second,
		Bots: []workload.BotSpec{
			{UserID: 900001, BatchSize: 300, Period: 15 * time.Second},
			{UserID: 900002, BatchSize: 200, Period: 20 * time.Second, StartAt: 10 * time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's shape: both bots detected, and low-rate user-windows
	// dominate the distribution.
	if len(res.Detected) != 2 || res.Detected[0] != "900001" || res.Detected[1] != "900002" {
		t.Errorf("detected = %v, want the two bots", res.Detected)
	}
	var low, high int64
	for k, n := range res.Histogram {
		if k <= 5 {
			low += n
		}
		if k > res.Threshold {
			high += n
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("degenerate histogram: low=%d high=%d", low, high)
	}
	if low < 20*high {
		t.Errorf("human windows (%d) should dwarf bot windows (%d)", low, high)
	}
	if res.Windows < 5 {
		t.Errorf("only %d windows emitted", res.Windows)
	}
	// Counts decay: bucket(1) ≥ bucket(4).
	if res.Histogram[1] < res.Histogram[4] {
		t.Errorf("distribution not decaying: h[1]=%d h[4]=%d", res.Histogram[1], res.Histogram[4])
	}

	tab := res.Table()
	if tab.ID != "E1" || len(tab.Rows) == 0 {
		t.Error("table malformed")
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	if !strings.Contains(sb.String(), "bots") {
		t.Error("rendered table missing bot bucket")
	}
}
