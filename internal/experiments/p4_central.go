package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scrub/internal/central"
	"scrub/internal/event"
	"scrub/internal/ql"
	"scrub/internal/transport"
)

// P4Config parametrizes the ScrubCentral throughput measurement
// (reconstructed from §9): tuples/second for the three operator shapes
// the engine runs — select-only pass-through, group-by aggregation, and
// the request-id equi-join — plus a group-cardinality sweep and a
// sharded-cluster comparison point.
type P4Config struct {
	Tuples        int   // per measurement; default 400000
	BatchSize     int   // default 512
	Cardinalities []int // group-by key cardinality sweep; default {10, 1k, 100k}
	Shards        int   // sharded comparison point; default 4
	Seed          int64
}

func (c *P4Config) fillDefaults() {
	if c.Tuples == 0 {
		c.Tuples = 400000
	}
	if c.BatchSize == 0 {
		c.BatchSize = 512
	}
	if len(c.Cardinalities) == 0 {
		c.Cardinalities = []int{10, 1000, 100000}
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Seed == 0 {
		c.Seed = 9404
	}
}

// P4Point is one throughput measurement.
type P4Point struct {
	Shape      string
	TuplesPerS float64
}

// P4Result carries the measurements.
type P4Result struct {
	Config P4Config
	Points []P4Point
}

func p4Catalog() *event.Catalog {
	cat := event.NewCatalog()
	cat.MustRegister(event.MustSchema("bid",
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
	))
	cat.MustRegister(event.MustSchema("exclusion",
		event.FieldDef{Name: "reason", Kind: event.KindString},
	))
	return cat
}

// runCentral feeds tuples through one query with `feeders` concurrent
// producers (hosts ship batches concurrently in production) and returns
// tuples/second. shards == 0 uses the single-node engine.
func runCentral(cfg P4Config, queryText string, makeBatch func(i int) transport.TupleBatch, nBatches, shards, feeders int) (float64, error) {
	cat := p4Catalog()
	q, err := ql.Parse(queryText)
	if err != nil {
		return 0, err
	}
	plan, err := ql.Analyze(q, cat)
	if err != nil {
		return 0, err
	}
	var engine central.Executor = central.NewEngine()
	if shards > 1 {
		se, err := central.NewShardedEngine(shards)
		if err != nil {
			return 0, err
		}
		engine = se
	}
	cp := central.FromPlan(plan, 1, 0, 0, 1, 1)
	cp.MaxRawRows = 1 << 30 // throughput measurement, not memory bounding
	cp.MaxJoinPending = 1 << 30
	if err := engine.StartQuery(cp, func(transport.ResultWindow) {}); err != nil {
		return 0, err
	}
	if feeders < 1 {
		feeders = 1
	}
	// Pre-build the batches so producer-side construction cost stays out
	// of the measurement.
	batches := make([]transport.TupleBatch, nBatches)
	total := 0
	for i := range batches {
		batches[i] = makeBatch(i)
		total += len(batches[i].Tuples)
	}
	// Drive window closing the way production does: a ticker advancing
	// with (event) time, so windows merge and render incrementally
	// instead of piling up until the final flush.
	var maxTs atomic.Int64
	tickStop := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-tickStop:
				return
			case <-t.C:
				engine.Tick(maxTs.Load())
			}
		}
	}()
	start := time.Now()
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := f; i < nBatches; i += feeders {
				b := batches[i]
				last := b.Tuples[len(b.Tuples)-1].TsNanos
				engine.HandleBatch(b)
				for {
					cur := maxTs.Load()
					if last <= cur || maxTs.CompareAndSwap(cur, last) {
						break
					}
				}
			}
		}(f)
	}
	wg.Wait()
	close(tickStop)
	<-tickDone
	engine.StopQuery(1)
	elapsed := time.Since(start).Seconds()
	if elapsed == 0 {
		return 0, nil
	}
	return float64(total) / elapsed, nil
}

// P4CentralThroughput runs the measurements.
func P4CentralThroughput(cfg P4Config) (*P4Result, error) {
	cfg.fillDefaults()
	res := &P4Result{Config: cfg}
	nBatches := cfg.Tuples / cfg.BatchSize

	// Pre-build tuple batches; timestamps advance so windows roll.
	bidBatch := func(card int) func(int) transport.TupleBatch {
		return func(i int) transport.TupleBatch {
			tuples := make([]transport.Tuple, cfg.BatchSize)
			base := int64(i*cfg.BatchSize) * int64(time.Millisecond)
			for j := range tuples {
				id := (i*cfg.BatchSize + j) % card
				tuples[j] = transport.Tuple{
					RequestID: uint64(i*cfg.BatchSize + j),
					TsNanos:   base + int64(j)*int64(time.Millisecond) + 1,
					Values:    []event.Value{event.Int(int64(id)), event.Float(1.5)},
				}
			}
			return transport.TupleBatch{QueryID: 1, HostID: "h", TypeIdx: 0, Tuples: tuples}
		}
	}

	// Select-only (raw pass-through with predicate).
	tps, err := runCentral(cfg,
		`select bid.user_id, bid.bid_price from bid where bid.bid_price > 1.0 window 10s duration 1h`,
		bidBatch(1<<30), nBatches, 0, 4)
	if err != nil {
		return nil, err
	}
	res.Points = append(res.Points, P4Point{Shape: "select-only", TuplesPerS: tps})

	// Group-by sweep.
	for _, card := range cfg.Cardinalities {
		tps, err := runCentral(cfg,
			`select bid.user_id, count(*), avg(bid.bid_price) from bid group by bid.user_id window 10s duration 1h`,
			bidBatch(card), nBatches, 0, 4)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, P4Point{
			Shape: fmt.Sprintf("group-by (%d groups)", card), TuplesPerS: tps,
		})
	}

	// Join: alternate bid/exclusion batches sharing request ids.
	joinBatch := func(i int) transport.TupleBatch {
		tuples := make([]transport.Tuple, cfg.BatchSize)
		side := uint8(i % 2)
		pair := i / 2
		base := int64(pair*cfg.BatchSize) * int64(time.Millisecond)
		for j := range tuples {
			req := uint64(pair*cfg.BatchSize + j)
			ts := base + int64(j)*int64(time.Millisecond) + 1
			if side == 0 {
				tuples[j] = transport.Tuple{RequestID: req, TsNanos: ts,
					Values: []event.Value{event.Int(int64(req % 100)), event.Float(1.5)}}
			} else {
				tuples[j] = transport.Tuple{RequestID: req, TsNanos: ts,
					Values: []event.Value{event.Str("budget")}}
			}
		}
		return transport.TupleBatch{QueryID: 1, HostID: "h", TypeIdx: side, Tuples: tuples}
	}
	tps, err = runCentral(cfg,
		`select exclusion.reason, count(*) from bid, exclusion group by exclusion.reason window 10s duration 1h`,
		joinBatch, nBatches, 0, 4)
	if err != nil {
		return nil, err
	}
	res.Points = append(res.Points, P4Point{Shape: "join (bid ⋈ exclusion)", TuplesPerS: tps})

	// Sharded cluster point: the heaviest group-by across shards — the
	// "small ScrubCentral cluster" scaling axis. Concurrent feeders let
	// the shards' independent locks actually parallelize, which the
	// single-node engine's one mutex cannot.
	heavyCard := cfg.Cardinalities[len(cfg.Cardinalities)-1]
	tps, err = runCentral(cfg,
		`select bid.user_id, count(*), avg(bid.bid_price) from bid group by bid.user_id window 10s duration 1h`,
		bidBatch(heavyCard), nBatches, cfg.Shards, 4)
	if err != nil {
		return nil, err
	}
	res.Points = append(res.Points, P4Point{
		Shape: fmt.Sprintf("group-by (%d groups, %d shards)", heavyCard, cfg.Shards), TuplesPerS: tps,
	})
	return res, nil
}

// Table renders the measurements.
func (r *P4Result) Table() *Table {
	t := &Table{
		ID:      "P4",
		Title:   "ScrubCentral throughput by operator shape (§9, reconstructed)",
		Columns: []string{"query shape", "tuples/second"},
	}
	for _, p := range r.Points {
		t.AddRow(p.Shape, fmt.Sprintf("%.0f", p.TuplesPerS))
	}
	t.Notes = append(t.Notes,
		"the centralized execution strategy concentrates all join/group-by cost here, off the application hosts",
		"the sharded row trades some single-stream throughput for distributed state and multi-node headroom: shards accumulate in parallel while the merger serializes window merge+render — within one process the two roughly break even; across machines sharding is the scaling path",
	)
	return t
}
