package experiments

import (
	"fmt"
)

// PS measures how per-request host cost scales to hundreds of concurrent
// queries — the regime the shared query index (DESIGN.md §14) exists
// for. The paper's deployment runs "hundreds of queries" per host; P1's
// 0–32 sweep does not reach the regime where per-query dispatch cost
// dominates, so PS extends the sweep to 256 under two predicate mixes:
//
//   - overlap: queries cycle through OverlapPreds distinct selective
//     predicates, the realistic shape (many troubleshooters watch the
//     same few suspicious slices). Every duplicated predicate
//     canonicalizes onto one shared DAG node, so added-ns should grow
//     sublinearly in query count.
//   - distinct: every query carries a unique predicate constant, so no
//     two predicates share a node. This is the adversarial no-sharing
//     bound — and the regression guard showing the shared-index
//     machinery costs no more than the old per-query loop when sharing
//     gives nothing (compare with BENCH_P1 at the same query count).
//
// The sweep is written to BENCH_P2.json by cmd/benchrunner.

// PSConfig parametrizes the query-scale sweep.
type PSConfig struct {
	Requests   int   `json:"requests"`    // requests per measurement; default 30000
	LineItems  int   `json:"line_items"`  // default 150
	QuerySweep []int `json:"query_sweep"` // default {0,1,2,4,8,16,32,64,128,256}
	// Reps per sweep point; the reported ns/request is the median (see
	// P1Config.Reps). Default 3.
	Reps int   `json:"reps"`
	Seed int64 `json:"seed"` // default 9303
	// OverlapPreds is the number of distinct predicates the overlap mix
	// cycles through. Default 16.
	OverlapPreds int `json:"overlap_preds"`
	// ReferenceRequestNs: see P1Config. Default 10ms.
	ReferenceRequestNs float64 `json:"reference_request_ns"`
}

func (c *PSConfig) fillDefaults() {
	if c.Requests == 0 {
		c.Requests = 30000
	}
	if c.LineItems == 0 {
		c.LineItems = 150
	}
	if len(c.QuerySweep) == 0 {
		c.QuerySweep = []int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.Seed == 0 {
		c.Seed = 9303
	}
	if c.OverlapPreds == 0 {
		c.OverlapPreds = 16
	}
	if c.ReferenceRequestNs == 0 {
		c.ReferenceRequestNs = 10e6
	}
}

// PSMix is one predicate mix's sweep (points reuse the P1 shape).
type PSMix struct {
	Name   string    `json:"name"`
	Points []P1Point `json:"points"`
}

// PSResult carries both mixes; its JSON form is BENCH_P2.json.
type PSResult struct {
	Config PSConfig `json:"config"`
	Mixes  []PSMix  `json:"mixes"`
}

// psOverlapQuery is query i of the overlap mix: a group-by count over
// one of OverlapPreds distinct bid_price thresholds. Thresholds span
// 6.0–9.0, the selective tail of the simulator's bid-price distribution
// (advisory prices are log-uniform in [0.5, 8] with ±15% model
// adjustment), so most events match no query and the measurement
// isolates dispatch cost rather than enqueue volume.
func psOverlapQuery(i, overlapPreds int) string {
	threshold := 6.0 + 3.0*float64(i%overlapPreds)/float64(overlapPreds)
	return fmt.Sprintf(
		`select bid.user_id, count(*) from bid where bid.bid_price > %.4f group by bid.user_id window 10s duration 1h`,
		threshold)
}

// psDistinctQuery is query i of the distinct mix: the same query shape,
// but every query's threshold differs in the sixth decimal, so no two
// predicates canonicalize onto the same DAG node (the bid_price field
// reference is still a shared subexpression — that much sharing is
// inherent to the design).
func psDistinctQuery(i, overlapPreds int) string {
	threshold := 6.0 + 3.0*float64(i%overlapPreds)/float64(overlapPreds) + float64(i)*1e-6
	return fmt.Sprintf(
		`select bid.user_id, count(*) from bid where bid.bid_price > %.6f group by bid.user_id window 10s duration 1h`,
		threshold)
}

// PSQueryScale runs both mixes over the sweep.
func PSQueryScale(cfg PSConfig) (*PSResult, error) {
	cfg.fillDefaults()
	res := &PSResult{Config: cfg}
	base := P1Config{
		Requests: cfg.Requests, LineItems: cfg.LineItems, Seed: cfg.Seed,
		ReferenceRequestNs: cfg.ReferenceRequestNs,
	}
	mixes := []struct {
		name string
		gen  func(i, overlapPreds int) string
	}{
		{"overlap", psOverlapQuery},
		{"distinct", psDistinctQuery},
	}
	for _, mix := range mixes {
		var baseline float64
		pts := make([]P1Point, 0, len(cfg.QuerySweep))
		for _, nq := range cfg.QuerySweep {
			queries := make([]string, nq)
			for q := 0; q < nq; q++ {
				queries[q] = mix.gen(q, cfg.OverlapPreds)
			}
			samples := make([]float64, 0, cfg.Reps)
			for rep := 0; rep < cfg.Reps; rep++ {
				ns, err := overheadMeasureOnce(base, queries)
				if err != nil {
					return nil, err
				}
				samples = append(samples, ns)
			}
			nsPerReq := median(samples)
			p := P1Point{Queries: nq, NsPerReq: nsPerReq}
			if nq == 0 {
				baseline = nsPerReq
			}
			if baseline > 0 {
				p.AddedNs = nsPerReq - baseline
				p.OverheadPct = p.AddedNs / baseline * 100
				p.SLOPct = p.AddedNs / cfg.ReferenceRequestNs * 100
			}
			pts = append(pts, p)
		}
		res.Mixes = append(res.Mixes, PSMix{Name: mix.name, Points: pts})
	}
	return res, nil
}

// Table renders both mixes.
func (r *PSResult) Table() *Table {
	t := &Table{
		ID:      "PS",
		Title:   "Host overhead at query scale: shared vs distinct predicates",
		Columns: []string{"mix", "active queries", "ns/request", "added ns", "vs simulated request", "vs production request budget"},
	}
	for _, m := range r.Mixes {
		for _, p := range m.Points {
			t.AddRow(m.Name, fmtI(int64(p.Queries)), fmtF(p.NsPerReq), fmtF(p.AddedNs),
				fmt.Sprintf("%+.1f%%", p.OverheadPct), fmt.Sprintf("%+.3f%%", p.SLOPct))
		}
	}
	t.Notes = append(t.Notes,
		"overlap mix: queries cycle a small set of distinct predicates; canonicalization interns duplicates onto one shared DAG node, so added-ns should grow sublinearly with query count",
		"distinct mix: every predicate constant is unique (no node sharing); this bounds the adversarial case and guards against the shared index regressing the no-sharing workload",
		fmt.Sprintf("median of %d reps per point; sweep written to BENCH_P2.json by cmd/benchrunner", r.Config.Reps))
	return t
}
