package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/host"
	"scrub/internal/stats"
	"scrub/internal/transport"
	"scrub/internal/workload"
)

// P1Config parametrizes the host-overhead measurement (paper §9 /
// abstract: "a maximum CPU overhead of up to 2.5% on application hosts").
// A fixed bidding workload runs with increasing numbers of concurrent
// Scrub queries; the per-request processing cost is compared with the
// zero-query baseline.
type P1Config struct {
	Requests   int   `json:"requests"`    // requests per measurement; default 30000
	LineItems  int   `json:"line_items"`  // default 150
	QuerySweep []int `json:"query_sweep"` // concurrent query counts; default {0,1,2,4,8,16,32}
	// Reps is how many times each sweep point is measured; the reported
	// ns/request is the median. Single-shot timing of a ~10µs request is
	// noisy enough to invert adjacent sweep points (a historical
	// BENCH_P1.json had 8 queries measuring cheaper than 4); the median of
	// ≥3 reps makes the trajectory trustworthy. Default 3.
	Reps int   `json:"reps"`
	Seed int64 `json:"seed"`
	// ReferenceRequestNs is the production request budget the paper's
	// percentages are relative to: Turn's whole bid transaction completes
	// "in under 20 milliseconds" (§7). The simulator's request costs ~10µs
	// (no ML scoring, no real network), which inflates relative overhead
	// ~1000×; the absolute added ns/request is the transferable number.
	// Default 10ms.
	ReferenceRequestNs float64 `json:"reference_request_ns"`
}

func (c *P1Config) fillDefaults() {
	if c.Requests == 0 {
		c.Requests = 30000
	}
	if c.LineItems == 0 {
		c.LineItems = 150
	}
	if len(c.QuerySweep) == 0 {
		c.QuerySweep = []int{0, 1, 2, 4, 8, 16, 32}
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.Seed == 0 {
		c.Seed = 9101
	}
	if c.ReferenceRequestNs == 0 {
		c.ReferenceRequestNs = 10e6 // 10ms
	}
}

// P1Point is one sweep measurement.
type P1Point struct {
	Queries     int     `json:"queries"`
	NsPerReq    float64 `json:"ns_per_request"`
	AddedNs     float64 `json:"added_ns"`      // absolute Scrub cost per request vs baseline
	OverheadPct float64 `json:"overhead_pct"`  // vs the (simulated) 0-query baseline
	// SLOPct is AddedNs relative to the production request budget —
	// the number comparable with the paper's ≤2.5%.
	SLOPct float64 `json:"slo_pct"`
}

// P1Result carries the sweep. The JSON form is what cmd/benchrunner
// writes to BENCH_P1.json so the perf trajectory is machine-trackable
// across PRs.
type P1Result struct {
	Config P1Config  `json:"config"`
	Points []P1Point `json:"points"`
}

// queryTemplates are the shapes troubleshooters run concurrently; the
// sweep cycles through them.
var queryTemplates = []string{
	`select bid.user_id, count(*) from bid group by bid.user_id window 10s duration 1h`,
	`select count(*) from bid where bid.bid_price > 1.5 window 10s duration 1h`,
	`select avg(bid.bid_price) from bid where bid.exchange_id = 1 window 10s duration 1h`,
	`select bid.exchange_id, count(*) from bid group by bid.exchange_id window 10s duration 1h`,
	`select count_distinct(bid.user_id) from bid window 10s duration 1h`,
	`select max(bid.bid_price), min(bid.bid_price) from bid window 10s duration 1h`,
	`select count(*) from bid where bid.country = "US" window 10s duration 1h`,
	`select top_k(bid.user_id, 10) from bid window 10s duration 1h`,
}

// measureWorkload runs the traffic once and returns ns/request.
func measureWorkload(platform *adplatform.Platform, gen *workload.Generator, duration time.Duration) float64 {
	n := 0
	start := time.Now()
	gen.Run(duration, func(r adplatform.BidRequest) {
		platform.Process(r)
		n++
	})
	elapsed := time.Since(start)
	if n == 0 {
		return 0
	}
	return float64(elapsed.Nanoseconds()) / float64(n)
}

func newOverheadPlatform(cfg P1Config) (*adplatform.Platform, error) {
	// The sink serializes every batch (the real wire cost stays on the
	// host) and discards it: ScrubCentral is a dedicated remote facility
	// in the paper's deployment, so its CPU must not be charged to the
	// application host under measurement. Encode buffers are pooled
	// (several agents share this sink) so the sink itself adds no
	// steady-state allocation to the measured path.
	encPool := sync.Pool{New: func() any { return new([]byte) }}
	shipAndDiscard := host.SinkFunc(func(b transport.TupleBatch) error {
		bp := encPool.Get().(*[]byte)
		out, err := transport.AppendEncode((*bp)[:0], b)
		*bp = out[:0]
		encPool.Put(bp)
		return err
	})
	return adplatform.New(adplatform.Config{
		NumBidServers: 2, NumAdServers: 2, NumPresentationServers: 2,
		LineItems: adplatform.GenerateLineItems(cfg.LineItems, cfg.Seed),
		Agent:     host.Config{FlushInterval: 20 * time.Millisecond, QueueSize: 1 << 16},
		AgentSink: shipAndDiscard,
	})
}

func overheadTraffic(cfg P1Config, start time.Time) (*workload.Generator, time.Duration, error) {
	// Enough virtual time that the request budget is exhausted first.
	gen, err := workload.NewGenerator(workload.Spec{
		Seed: cfg.Seed, NumUsers: 1000, MeanPageViewsPerMin: 6,
	}, start)
	if err != nil {
		return nil, 0, err
	}
	// ~1000 users × 6 views/min × 2 slots = 12000 req/min virtual.
	mins := float64(cfg.Requests) / 12000
	return gen, time.Duration(mins * float64(time.Minute)), nil
}

// overheadMeasureOnce builds a fresh platform, installs the given
// queries, runs a warm-up pass, measures one timed pass, and tears
// everything down. It is the single-measurement primitive both the P1
// and PS sweeps repeat and take medians over.
func overheadMeasureOnce(cfg P1Config, queries []string) (float64, error) {
	platform, err := newOverheadPlatform(cfg)
	if err != nil {
		return 0, err
	}
	defer platform.Close()
	gen, dur, err := overheadTraffic(cfg, virtualStart())
	if err != nil {
		return 0, err
	}
	gen.InstallProfiles(platform.Store)
	ids := make([]uint64, 0, len(queries))
	for _, src := range queries {
		st, err := platform.Cluster.Query(src)
		if err != nil {
			return 0, err
		}
		go func() { // drain
			for range st.Windows {
			}
		}()
		ids = append(ids, st.Info.ID)
	}
	// Warm-up pass (fills caches, steadies the allocator), then the
	// measured pass over fresh traffic.
	warm, warmDur, err := overheadTraffic(P1Config{Requests: cfg.Requests / 4, Seed: cfg.Seed + 1}, virtualStart())
	if err != nil {
		return 0, err
	}
	measureWorkload(platform, warm, warmDur)
	nsPerReq := measureWorkload(platform, gen, dur)
	for _, id := range ids {
		_ = platform.Cluster.Cancel(id)
	}
	return nsPerReq, nil
}

// median returns the middle value (mean of the middle two for even n).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// P1HostOverhead runs the sweep, measuring every point Reps times and
// reporting the median.
func P1HostOverhead(cfg P1Config) (*P1Result, error) {
	cfg.fillDefaults()
	res := &P1Result{Config: cfg}
	var baseline float64
	for _, nq := range cfg.QuerySweep {
		queries := make([]string, nq)
		for q := 0; q < nq; q++ {
			queries[q] = queryTemplates[q%len(queryTemplates)]
		}
		samples := make([]float64, 0, cfg.Reps)
		for rep := 0; rep < cfg.Reps; rep++ {
			ns, err := overheadMeasureOnce(cfg, queries)
			if err != nil {
				return nil, err
			}
			samples = append(samples, ns)
		}
		nsPerReq := median(samples)

		p := P1Point{Queries: nq, NsPerReq: nsPerReq}
		if nq == 0 {
			baseline = nsPerReq
		}
		if baseline > 0 {
			p.AddedNs = nsPerReq - baseline
			p.OverheadPct = p.AddedNs / baseline * 100
			p.SLOPct = p.AddedNs / cfg.ReferenceRequestNs * 100
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Table renders the sweep.
func (r *P1Result) Table() *Table {
	t := &Table{
		ID:      "P1",
		Title:   "Host overhead vs concurrent queries (§9/abstract)",
		Columns: []string{"active queries", "ns/request", "added ns", "vs simulated request", "vs production request budget"},
	}
	for _, p := range r.Points {
		t.AddRow(fmtI(int64(p.Queries)), fmtF(p.NsPerReq), fmtF(p.AddedNs),
			fmt.Sprintf("%+.1f%%", p.OverheadPct), fmt.Sprintf("%+.3f%%", p.SLOPct))
	}
	t.Notes = append(t.Notes,
		"paper: at most ~2.5% max CPU overhead on application hosts under query load",
		fmt.Sprintf("the last column divides the absolute added cost by a %.0fms production request budget (§7: the bid transaction completes in under 20ms); the simulator's request itself costs only ~10µs, which is why the simulated-relative column runs far higher", r.Config.ReferenceRequestNs/1e6),
		"the Log hot path is selection+projection+enqueue only; joins/aggregation never run here")
	return t
}

// P2Config parametrizes the request-latency comparison (paper §9 /
// abstract: "a 1% increase in request latency").
type P2Config struct {
	Requests int // default 20000
	Queries  int // concurrent queries when "on"; default 4
	Seed     int64
}

func (c *P2Config) fillDefaults() {
	if c.Requests == 0 {
		c.Requests = 20000
	}
	if c.Queries == 0 {
		c.Queries = 4
	}
	if c.Seed == 0 {
		c.Seed = 9202
	}
}

// P2Side is one latency distribution.
type P2Side struct {
	Label         string
	P50, P95, P99 float64 // microseconds
	Mean          float64
}

// P2Result compares Scrub off vs on.
type P2Result struct {
	Config  P2Config
	Off, On P2Side
	// MeanDeltaPct is the mean-latency increase with Scrub on, relative
	// to the simulated request (which costs ~10µs, vs the paper's
	// multi-millisecond production transaction).
	MeanDeltaPct float64
	// MeanDeltaUs is the absolute added latency in microseconds — the
	// transferable number.
	MeanDeltaUs float64
	// SLOPct relates the absolute delta to a 10ms production request
	// budget, comparable with the paper's ~1%.
	SLOPct float64
}

// P2RequestLatency runs the comparison.
func P2RequestLatency(cfg P2Config) (*P2Result, error) {
	cfg.fillDefaults()
	measure := func(queries int) (P2Side, error) {
		platform, err := newOverheadPlatform(P1Config{LineItems: 150, Seed: cfg.Seed})
		if err != nil {
			return P2Side{}, err
		}
		defer platform.Close()
		gen, dur, err := overheadTraffic(P1Config{Requests: cfg.Requests, Seed: cfg.Seed}, virtualStart())
		if err != nil {
			return P2Side{}, err
		}
		gen.InstallProfiles(platform.Store)
		for q := 0; q < queries; q++ {
			st, err := platform.Cluster.Query(queryTemplates[q%len(queryTemplates)])
			if err != nil {
				return P2Side{}, err
			}
			go func() {
				for range st.Windows {
				}
			}()
		}
		// Warm-up pass before the timed pass, so the off/on measurements
		// are equally warm.
		warm, warmDur, err := overheadTraffic(P1Config{Requests: cfg.Requests / 4, Seed: cfg.Seed + 1}, virtualStart())
		if err != nil {
			return P2Side{}, err
		}
		measureWorkload(platform, warm, warmDur)
		lat := make([]float64, 0, cfg.Requests)
		gen.Run(dur, func(r adplatform.BidRequest) {
			t0 := time.Now()
			platform.Process(r)
			lat = append(lat, float64(time.Since(t0).Nanoseconds())/1000)
		})
		var m stats.Running
		for _, x := range lat {
			m.Add(x)
		}
		return P2Side{
			P50: stats.Percentile(lat, 50), P95: stats.Percentile(lat, 95),
			P99: stats.Percentile(lat, 99), Mean: m.Mean(),
		}, nil
	}
	off, err := measure(0)
	if err != nil {
		return nil, err
	}
	on, err := measure(cfg.Queries)
	if err != nil {
		return nil, err
	}
	off.Label, on.Label = "Scrub off", fmt.Sprintf("Scrub on (%d queries)", cfg.Queries)
	res := &P2Result{Config: cfg, Off: off, On: on}
	res.MeanDeltaUs = on.Mean - off.Mean
	if off.Mean > 0 {
		res.MeanDeltaPct = res.MeanDeltaUs / off.Mean * 100
	}
	res.SLOPct = res.MeanDeltaUs * 1000 / 10e6 * 100 // vs 10ms budget
	return res, nil
}

// Table renders the comparison.
func (r *P2Result) Table() *Table {
	t := &Table{
		ID:      "P2",
		Title:   "Bid-request latency with Scrub off vs on (§9/abstract)",
		Columns: []string{"configuration", "mean (µs)", "p50 (µs)", "p95 (µs)", "p99 (µs)"},
	}
	for _, s := range []P2Side{r.Off, r.On} {
		t.AddRow(s.Label, fmtF(s.Mean), fmtF(s.P50), fmtF(s.P95), fmtF(s.P99))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean latency delta: %+.2fµs absolute (%+.1f%% of the ~10µs simulated request; %+.3f%% of a 10ms production request budget)",
			r.MeanDeltaUs, r.MeanDeltaPct, r.SLOPct),
		"paper: ~1% request-latency increase; Log never blocks (bounded queue, drop on overflow)")
	return t
}
