package experiments

import (
	"testing"
	"time"
)

func TestE3ABTesting(t *testing.T) {
	res, err := E3ABTesting(E3Config{Users: 3000, Duration: 3 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.A.Impressions == 0 || res.B.Impressions == 0 {
		t.Fatalf("no impressions measured: %+v", res)
	}
	if res.A.Clicks == 0 || res.B.Clicks == 0 {
		t.Fatalf("no clicks measured: A=%d B=%d (imps %d/%d)", res.A.Clicks, res.B.Clicks, res.A.Impressions, res.B.Impressions)
	}
	// Figure 15's shape: CTR(B) > CTR(A), CPM within ~20%.
	if res.B.CTR <= res.A.CTR {
		t.Errorf("CTR B (%.4f) should beat CTR A (%.4f)", res.B.CTR, res.A.CTR)
	}
	cpmRatio := res.B.CPM / res.A.CPM
	if cpmRatio < 0.8 || cpmRatio > 1.25 {
		t.Errorf("CPM ratio B/A = %.2f, want ≈1 (paper: cost held constant)", cpmRatio)
	}
	// CPM sanity: 1000×avg(cost); cost = price×0.85, prices around $2.
	if res.A.CPM < 500 || res.A.CPM > 4000 {
		t.Errorf("CPM A = %v, implausible", res.A.CPM)
	}
	if tab := res.Table(); len(tab.Rows) != 2 {
		t.Error("table should have one row per model")
	}
}
