package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"scrub/internal/sampling"
)

// P3Config parametrizes the sampling-accuracy validation of the paper's
// Eq. 1–3 (§3.2): for a fixed per-host population, sweep the host and
// event sampling rates, estimate a SUM many times, and report empirical
// relative error and confidence-interval coverage.
type P3Config struct {
	Hosts      int // default 50
	PerHost    int // events per host; default 500
	Trials     int // sampling draws per sweep point; default 200
	Confidence float64
	Seed       int64
	// Sweep of (hostRate, eventRate) pairs; defaults cover the paper's
	// 10%/10% use case (§8.2) plus coarser and finer settings.
	Sweep [][2]float64
}

func (c *P3Config) fillDefaults() {
	if c.Hosts == 0 {
		c.Hosts = 50
	}
	if c.PerHost == 0 {
		c.PerHost = 500
	}
	if c.Trials == 0 {
		c.Trials = 200
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.Seed == 0 {
		c.Seed = 9303
	}
	if len(c.Sweep) == 0 {
		c.Sweep = [][2]float64{
			{1.0, 0.5}, {1.0, 0.1}, {0.5, 0.5}, {0.5, 0.1},
			{0.2, 0.2}, {0.1, 0.1}, {0.1, 0.05},
		}
	}
}

// P3Point is one sweep measurement.
type P3Point struct {
	HostRate, EventRate float64
	MeanRelErr          float64 // |τ̂−τ|/τ averaged over trials
	MeanBoundRel        float64 // ε/τ averaged over trials
	Coverage            float64 // fraction of trials with |τ̂−τ| ≤ ε
}

// P3Result carries the sweep and the true total.
type P3Result struct {
	Config P3Config
	Truth  float64
	Points []P3Point
}

// P3SamplingAccuracy runs the validation.
func P3SamplingAccuracy(cfg P3Config) (*P3Result, error) {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Population: per-host means differ (cross-host variance matters for
	// the between-host term of Eq. 3).
	pop := make([][]float64, cfg.Hosts)
	var truth float64
	for h := range pop {
		base := 5 + rng.Float64()*20
		pop[h] = make([]float64, cfg.PerHost)
		for i := range pop[h] {
			v := base + rng.NormFloat64()*3
			pop[h][i] = v
			truth += v
		}
	}

	res := &P3Result{Config: cfg, Truth: truth}
	for _, rates := range cfg.Sweep {
		hostRate, eventRate := rates[0], rates[1]
		n := int(math.Ceil(hostRate * float64(cfg.Hosts)))
		if n < 2 {
			n = 2 // a single sampled host has an unbounded interval
		}
		var relErrs, boundRels float64
		covered := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			hostIdx := rng.Perm(cfg.Hosts)[:n]
			samples := make([]sampling.HostSample, 0, n)
			for _, hi := range hostIdx {
				events := pop[hi]
				mi := int(eventRate * float64(len(events)))
				if mi < 2 {
					mi = 2
				}
				idx := rng.Perm(len(events))[:mi]
				vals := make([]float64, mi)
				for k, ei := range idx {
					vals[k] = events[ei]
				}
				samples = append(samples, sampling.HostSample{
					HostID: fmt.Sprint(hi), M: uint64(len(events)), Values: vals,
				})
			}
			est, err := sampling.EstimateSum(cfg.Hosts, samples, cfg.Confidence)
			if err != nil {
				return nil, err
			}
			relErrs += math.Abs(est.Value-truth) / truth
			boundRels += est.Err / truth
			if math.Abs(est.Value-truth) <= est.Err {
				covered++
			}
		}
		res.Points = append(res.Points, P3Point{
			HostRate: hostRate, EventRate: eventRate,
			MeanRelErr:   relErrs / float64(cfg.Trials),
			MeanBoundRel: boundRels / float64(cfg.Trials),
			Coverage:     float64(covered) / float64(cfg.Trials),
		})
	}
	return res, nil
}

// Table renders the sweep.
func (r *P3Result) Table() *Table {
	t := &Table{
		ID:      "P3",
		Title:   "Multistage sampling accuracy and error bounds (§3.2, Eqs. 1–3)",
		Columns: []string{"host rate", "event rate", "mean rel. error", "mean bound (ε/τ)", "95% coverage"},
	}
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%.0f%%", p.HostRate*100),
			fmt.Sprintf("%.0f%%", p.EventRate*100),
			fmt.Sprintf("%.3f", p.MeanRelErr),
			fmt.Sprintf("%.3f", p.MeanBoundRel),
			fmt.Sprintf("%.2f", p.Coverage),
		)
	}
	t.Notes = append(t.Notes,
		"coverage ≈ 0.95 validates the ApproxHadoop-style bounds; error shrinks as either rate rises — the tunable accuracy/impact trade",
	)
	return t
}
