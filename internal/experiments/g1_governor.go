package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/host"
	"scrub/internal/transport"
)

// G1Config parametrizes the governor experiment: one deliberately
// expensive query (wide raw projection — every sampled tuple ships) runs
// over the same bidding workload twice, once unbounded and once with a
// tight BUDGET BYTES clause. The point of comparison is the host impact:
// absolute added ns/request over the zero-query baseline, and total bytes
// handed to the wire. Under budget the governor walks the query down the
// degradation ladder (rate halvings, then shed), so both numbers must
// drop while the unbounded run pays full freight.
type G1Config struct {
	Requests  int   `json:"requests"`   // requests per measurement; default 30000
	LineItems int   `json:"line_items"` // default 150
	Seed      int64 `json:"seed"`
	// BudgetBytesPerSec is the BUDGET BYTES value for the budgeted run.
	// Default 4096 — far below what the wide query ships unbounded, so
	// the ladder bottoms out and the query sheds within the run.
	BudgetBytesPerSec float64 `json:"budget_bytes_per_sec"`
	// ReferenceRequestNs: see P1Config. Default 10ms.
	ReferenceRequestNs float64 `json:"reference_request_ns"`
}

func (c *G1Config) fillDefaults() {
	if c.Requests == 0 {
		c.Requests = 30000
	}
	if c.LineItems == 0 {
		c.LineItems = 150
	}
	if c.Seed == 0 {
		c.Seed = 9301
	}
	if c.BudgetBytesPerSec == 0 {
		c.BudgetBytesPerSec = 4096
	}
	if c.ReferenceRequestNs == 0 {
		c.ReferenceRequestNs = 10e6
	}
}

// G1Side is one measured configuration.
type G1Side struct {
	Label    string  `json:"label"`
	NsPerReq float64 `json:"ns_per_request"`
	AddedNs  float64 `json:"added_ns"` // vs the zero-query baseline
	SLOPct   float64 `json:"slo_pct"`  // AddedNs vs the production request budget
	Bytes    uint64  `json:"bytes_shipped"`
	Shed     bool    `json:"shed"` // did the governor shed the query?
}

// G1Result carries the comparison; the JSON form goes to BENCH_G1.json.
type G1Result struct {
	Config     G1Config `json:"config"`
	BaselineNs float64  `json:"baseline_ns_per_request"`
	Unbounded  G1Side   `json:"unbounded"`
	Budgeted   G1Side   `json:"budgeted"`
}

// g1Query is the expensive shape: raw (no aggregation), wide projection —
// every sampled bid ships with seven columns, so host bytes track traffic
// almost one-for-one.
const g1Query = `select bid.user_id, bid.line_item_id, bid.exchange_id, bid.bid_price, bid.country, bid.city, bid.model from bid window 10s duration 1h`

// g1Platform builds the overhead platform with a sink that serializes
// (keeping the wire cost on the host, as in P1) and counts encoded bytes.
func g1Platform(cfg G1Config, bytes *atomic.Uint64) (*adplatform.Platform, error) {
	encPool := sync.Pool{New: func() any { return new([]byte) }}
	countAndDiscard := host.SinkFunc(func(b transport.TupleBatch) error {
		bp := encPool.Get().(*[]byte)
		out, err := transport.AppendEncode((*bp)[:0], b)
		bytes.Add(uint64(len(out)) + 4) // payload + frame header, like NetSink
		*bp = out[:0]
		encPool.Put(bp)
		return err
	})
	return adplatform.New(adplatform.Config{
		NumBidServers: 2, NumAdServers: 2, NumPresentationServers: 2,
		LineItems: adplatform.GenerateLineItems(cfg.LineItems, cfg.Seed),
		Agent:     host.Config{FlushInterval: 20 * time.Millisecond, QueueSize: 1 << 16},
		AgentSink: countAndDiscard,
	})
}

// g1Measure runs the workload with the given query (empty = baseline) and
// returns ns/request, bytes shipped, and whether any agent shed.
func g1Measure(cfg G1Config, query string) (nsPerReq float64, bytes uint64, shed bool, err error) {
	var byteCount atomic.Uint64
	var windowShed atomic.Bool
	platform, err := g1Platform(cfg, &byteCount)
	if err != nil {
		return 0, 0, false, err
	}
	defer platform.Close()
	gen, dur, err := overheadTraffic(P1Config{Requests: cfg.Requests, Seed: cfg.Seed}, virtualStart())
	if err != nil {
		return 0, 0, false, err
	}
	gen.InstallProfiles(platform.Store)
	if query != "" {
		st, qerr := platform.Cluster.Query(query)
		if qerr != nil {
			return 0, 0, false, qerr
		}
		go func() { // drain
			for rw := range st.Windows {
				if rw.BudgetShed {
					windowShed.Store(true)
				}
			}
		}()
	}
	// Warm-up, then the measured pass (same protocol as P1 so the added-ns
	// numbers are comparable across the two experiments).
	warm, warmDur, err := overheadTraffic(P1Config{Requests: cfg.Requests / 4, Seed: cfg.Seed + 1}, virtualStart())
	if err != nil {
		return 0, 0, false, err
	}
	measureWorkload(platform, warm, warmDur)
	byteCount.Store(0) // charge only the measured pass
	nsPerReq = measureWorkload(platform, gen, dur)
	platform.Cluster.FlushAgents()
	platform.Cluster.FlushAgents()
	// The shed flag also shows up in host governor counters even when no
	// window happened to be emitted after the shed landed.
	shed = windowShed.Load()
	for _, a := range platform.Cluster.Agents() {
		if a.Stats().GovernorSheds > 0 {
			shed = true
		}
	}
	return nsPerReq, byteCount.Load(), shed, nil
}

// G1Governor runs baseline, unbounded, and budgeted passes.
func G1Governor(cfg G1Config) (*G1Result, error) {
	cfg.fillDefaults()
	res := &G1Result{Config: cfg}

	baseline, _, _, err := g1Measure(cfg, "")
	if err != nil {
		return nil, err
	}
	res.BaselineNs = baseline

	side := func(label, query string) (G1Side, error) {
		ns, bytes, shed, err := g1Measure(cfg, query)
		if err != nil {
			return G1Side{}, err
		}
		s := G1Side{Label: label, NsPerReq: ns, Bytes: bytes, Shed: shed}
		s.AddedNs = ns - baseline
		s.SLOPct = s.AddedNs / cfg.ReferenceRequestNs * 100
		return s, nil
	}
	if res.Unbounded, err = side("unbounded", g1Query); err != nil {
		return nil, err
	}
	budgeted := fmt.Sprintf("%s budget bytes %g", g1Query, cfg.BudgetBytesPerSec)
	if res.Budgeted, err = side(fmt.Sprintf("budget bytes %g", cfg.BudgetBytesPerSec), budgeted); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the comparison.
func (r *G1Result) Table() *Table {
	t := &Table{
		ID:      "G1",
		Title:   "Host impact of an expensive query: unbounded vs BUDGET (overhead governor)",
		Columns: []string{"configuration", "ns/request", "added ns", "vs production request budget", "bytes shipped", "shed"},
	}
	for _, s := range []G1Side{r.Unbounded, r.Budgeted} {
		t.AddRow(s.Label, fmtF(s.NsPerReq), fmtF(s.AddedNs),
			fmt.Sprintf("%+.3f%%", s.SLOPct), fmtI(int64(s.Bytes)), fmt.Sprintf("%v", s.Shed))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("baseline (no queries): %s ns/request", fmtF(r.BaselineNs)),
		"the wide raw projection ships every sampled tuple; under BUDGET BYTES the governor halves the sampling rate each over-budget interval and sheds at the 1/64 floor",
		"results under a tightened rate stay honest: hosts report their effective rate and central widens the error bounds (Eq. 1-3) instead of silently under-counting")
	return t
}
