package experiments

import (
	"fmt"
	"sort"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/host"
	"scrub/internal/workload"
)

// E4Config parametrizes the §8.4 exclusion investigation (Figures 16–17):
// an equi-join of bid and exclusion events on the request identifier —
// one event type produced at the BidServers, the other at the AdServers —
// grouped by exclusion reason, with selection narrowing to one exchange.
// The case study's point is scalability: every bid request produces a
// flood of exclusions that would be prohibitive to log, while Scrub
// queries them on demand.
type E4Config struct {
	Users      int           // default 800
	Duration   time.Duration // default 90s
	LineItems  int           // default 150 — exclusion volume per request
	ExchangeID int64         // selection target; default 2
	Seed       int64
}

func (c *E4Config) fillDefaults() {
	if c.Users == 0 {
		c.Users = 800
	}
	if c.Duration == 0 {
		c.Duration = 90 * time.Second
	}
	if c.LineItems == 0 {
		c.LineItems = 150
	}
	if c.ExchangeID == 0 {
		c.ExchangeID = 2
	}
	if c.Seed == 0 {
		c.Seed = 8404
	}
}

// E4Result carries the per-reason exclusion distribution for the chosen
// exchange.
type E4Result struct {
	Config E4Config
	// ReasonCounts: exclusion reason → joined occurrences (for requests
	// that produced a bid on the selected exchange).
	ReasonCounts map[string]int64
	// TotalJoined is the total joined rows.
	TotalJoined int64
	// ExclusionEventsLogged counts raw exclusion events the AdServers
	// produced — the volume logging would have had to retain.
	ExclusionEventsLogged uint64
	// TuplesShipped counts what Scrub actually moved for this query.
	TuplesShipped uint64
}

// E4Exclusions runs the experiment.
func E4Exclusions(cfg E4Config) (*E4Result, error) {
	cfg.fillDefaults()
	platform, err := adplatform.New(adplatform.Config{
		NumBidServers: 2, NumAdServers: 2, NumPresentationServers: 2,
		LineItems:      adplatform.GenerateLineItems(cfg.LineItems, cfg.Seed),
		EmitExclusions: true,
		Agent:          host.Config{FlushInterval: 10 * time.Millisecond, QueueSize: 1 << 18, BatchSize: 1024},
	})
	if err != nil {
		return nil, err
	}
	defer platform.Close()

	gen, err := workload.NewGenerator(workload.Spec{
		Seed: cfg.Seed, NumUsers: cfg.Users, MeanPageViewsPerMin: 3,
		Exchanges: []workload.Exchange{
			{ID: 1, Weight: 1}, {ID: 2, Weight: 1}, {ID: 3, Weight: 1},
		},
	}, virtualStart())
	if err != nil {
		return nil, err
	}
	gen.InstallProfiles(platform.Store)

	// The Figure-17 join template: bid ⋈ exclusion on request id, with
	// selection on the bid's exchange.
	query := fmt.Sprintf(
		`select exclusion.reason, count(*) from bid, exclusion where bid.exchange_id = %d group by exclusion.reason window 30s duration 1h @[all]`,
		cfg.ExchangeID)
	wins, err := RunScenario(platform.Cluster, []string{query}, func() {
		gen.Run(cfg.Duration, func(r adplatform.BidRequest) { platform.Process(r) })
	})
	if err != nil {
		return nil, err
	}

	res := &E4Result{Config: cfg, ReasonCounts: make(map[string]int64)}
	for _, rw := range wins[0] {
		for _, row := range rw.Rows {
			n, _ := row[1].AsInt()
			res.ReasonCounts[row[0].String()] += n
			res.TotalJoined += n
		}
	}
	for _, as := range platform.AdServers {
		st := as.Agent().Stats()
		res.ExclusionEventsLogged += st.Logged
		res.TuplesShipped += st.Shipped
	}
	for _, bs := range platform.BidServers {
		res.TuplesShipped += bs.Agent().Stats().Shipped
	}
	return res, nil
}

// Table renders the Figure-16 distribution.
func (r *E4Result) Table() *Table {
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("Line-item exclusions (§8.4, Figs. 16–17): bid ⋈ exclusion, exchange %d", r.Config.ExchangeID),
		Columns: []string{"exclusion reason", "occurrences"},
	}
	var reasons []string
	for k := range r.ReasonCounts {
		reasons = append(reasons, k)
	}
	sort.Slice(reasons, func(i, j int) bool { return r.ReasonCounts[reasons[i]] > r.ReasonCounts[reasons[j]] })
	for _, k := range reasons {
		t.AddRow(k, fmtI(r.ReasonCounts[k]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("joined rows: %d; raw ad-server events produced: %d; tuples Scrub shipped: %d",
			r.TotalJoined, r.ExclusionEventsLogged, r.TuplesShipped),
		"paper: every bid request produces tens of thousands of exclusions — logging them all would be prohibitive; Scrub queries them on demand")
	return t
}
