package experiments

import (
	"fmt"
	"sort"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/host"
	"scrub/internal/workload"
)

// E1Config parametrizes the §8.1 spam-detection reproduction (Figures 9
// and 10): COUNT(*) of bid requests per user in 10-second tumbling
// windows on one BidServer, with two bots hidden in a human population.
type E1Config struct {
	Users     int           // human population; default 1500
	Duration  time.Duration // virtual run; paper: 20 minutes; default 5m
	Window    time.Duration // default 10s (the paper's)
	Bots      []workload.BotSpec
	LineItems int
	Seed      int64
}

func (c *E1Config) fillDefaults() {
	if c.Users == 0 {
		c.Users = 1500
	}
	if c.Duration == 0 {
		c.Duration = 5 * time.Minute
	}
	if c.Window == 0 {
		c.Window = 10 * time.Second
	}
	if c.LineItems == 0 {
		c.LineItems = 100
	}
	if len(c.Bots) == 0 {
		c.Bots = []workload.BotSpec{
			{UserID: 900001, BatchSize: 400, Period: 20 * time.Second},
			{UserID: 900002, BatchSize: 250, Period: 30 * time.Second, StartAt: 45 * time.Second},
		}
	}
	if c.Seed == 0 {
		c.Seed = 8101
	}
}

// E1Result carries the per-user-per-window request-count distribution.
type E1Result struct {
	Config E1Config
	// Histogram buckets requests-per-user-per-window → user-window count.
	Histogram map[int64]int64
	// MaxPerUser maps user → max requests in any window.
	MaxPerUser map[string]int64
	// Detected holds users flagged as bots (max window count over
	// threshold), sorted.
	Detected  []string
	Threshold int64
	Windows   int
}

// E1SpamDetection runs the experiment.
func E1SpamDetection(cfg E1Config) (*E1Result, error) {
	cfg.fillDefaults()
	// Durable budgets: bid events are the measured signal; exhausted
	// budgets would stop bidding (and hence the signal) mid-run.
	items := adplatform.GenerateLineItems(cfg.LineItems, cfg.Seed)
	for _, li := range items {
		li.SetBudget(1e9)
	}
	platform, err := adplatform.New(adplatform.Config{
		NumBidServers: 1, NumAdServers: 2, NumPresentationServers: 2,
		LineItems: items,
		Agent:     host.Config{FlushInterval: 10 * time.Millisecond, QueueSize: 1 << 16},
	})
	if err != nil {
		return nil, err
	}
	defer platform.Close()

	gen, err := workload.NewGenerator(workload.Spec{
		Seed: cfg.Seed, NumUsers: cfg.Users, MeanPageViewsPerMin: 2,
		Bots: cfg.Bots,
	}, virtualStart())
	if err != nil {
		return nil, err
	}
	gen.InstallProfiles(platform.Store)

	// The paper's Figure 9 query, on one BidServer.
	query := fmt.Sprintf(
		`select bid.user_id, count(*) from bid group by bid.user_id window %s duration 1h @[Service in BidServers and Server = "bid-DC1-000"]`,
		cfg.Window)
	wins, err := RunScenario(platform.Cluster, []string{query}, func() {
		gen.Run(cfg.Duration, func(r adplatform.BidRequest) { platform.Process(r) })
	})
	if err != nil {
		return nil, err
	}

	res := &E1Result{
		Config:     cfg,
		Histogram:  make(map[int64]int64),
		MaxPerUser: make(map[string]int64),
		Windows:    len(wins[0]),
	}
	for _, rw := range wins[0] {
		for _, row := range rw.Rows {
			user := row[0].String()
			n, _ := row[1].AsInt()
			res.Histogram[n]++
			if n > res.MaxPerUser[user] {
				res.MaxPerUser[user] = n
			}
		}
	}
	// Threshold: humans view pages at a few per minute with ≤ a handful
	// of slots each; anything over 50 requests in 10 seconds is scripted.
	res.Threshold = 50
	for user, max := range res.MaxPerUser {
		if max > res.Threshold {
			res.Detected = append(res.Detected, user)
		}
	}
	sort.Strings(res.Detected)
	return res, nil
}

// Table renders the Figure-10 distribution plus the flagged bots.
func (r *E1Result) Table() *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Spam detection (§8.1, Figs. 9–10): bid requests per user per window",
		Columns: []string{"requests/window", "user-windows"},
	}
	var keys []int64
	for k := range r.Histogram {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	// Bucket the tail for readability.
	buckets := []struct {
		label  string
		lo, hi int64
	}{
		{"1", 1, 1}, {"2", 2, 2}, {"3", 3, 3}, {"4-5", 4, 5},
		{"6-10", 6, 10}, {"11-50", 11, 50}, {">50 (bots)", 51, 1 << 60},
	}
	for _, b := range buckets {
		var n int64
		for _, k := range keys {
			if k >= b.lo && k <= b.hi {
				n += r.Histogram[k]
			}
		}
		t.AddRow(b.label, fmtI(n))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("windows emitted: %d; users flagged as bots (> %d req/window): %v",
			r.Windows, r.Threshold, r.Detected),
		"paper: ~half of users issue 1 request/window, counts decay exponentially, 2 bots stand out with large frequent batches")
	return t
}
