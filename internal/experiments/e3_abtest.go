package experiments

import (
	"fmt"
	"strings"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/host"
	"scrub/internal/transport"
	"scrub/internal/workload"
)

// E3Config parametrizes the §8.3 A/B test reproduction (Figures 13–15):
// model A on half the machines, model B on the other half; Scrub queries
// compute each side's CPM (1000·AVG(impression.cost)) and CTR
// (clicks/impressions) by targeting the host lists.
type E3Config struct {
	ServersPerSide int           // ad+presentation servers per model; default 2
	Users          int           // default 3000
	Duration       time.Duration // default 3m
	LineItemID     int64         // the A/B'd line item; default 7777
	Seed           int64
}

func (c *E3Config) fillDefaults() {
	if c.ServersPerSide == 0 {
		c.ServersPerSide = 2
	}
	if c.Users == 0 {
		c.Users = 3000
	}
	if c.Duration == 0 {
		c.Duration = 3 * time.Minute
	}
	if c.LineItemID == 0 {
		c.LineItemID = 7777
	}
	if c.Seed == 0 {
		c.Seed = 8303
	}
}

// E3Side is one model's measured economics.
type E3Side struct {
	Model       string
	CPM         float64
	Impressions int64
	Clicks      int64
	CTR         float64
}

// E3Result carries both sides.
type E3Result struct {
	Config E3Config
	A, B   E3Side
}

// E3ABTesting runs the experiment.
func E3ABTesting(cfg E3Config) (*E3Result, error) {
	cfg.fillDefaults()
	n := cfg.ServersPerSide * 2

	// One open line item under test plus background inventory.
	li := &adplatform.LineItem{ID: cfg.LineItemID, CampaignID: 99, AdvisoryPrice: 2.0}
	li.SetBudget(1e9)
	items := append([]*adplatform.LineItem{li}, adplatform.GenerateLineItems(40, cfg.Seed)...)

	platform, err := adplatform.New(adplatform.Config{
		NumBidServers: 2, NumAdServers: n, NumPresentationServers: n,
		LineItems: items,
		ModelForAdServer: func(i int) adplatform.TargetingModel {
			if i < cfg.ServersPerSide {
				return adplatform.BaselineModel{}
			}
			return adplatform.ImprovedModel{}
		},
		ExternalWinRate: 0.5,
		Agent:           host.Config{FlushInterval: 10 * time.Millisecond, QueueSize: 1 << 16},
	})
	if err != nil {
		return nil, err
	}
	defer platform.Close()

	gen, err := workload.NewGenerator(workload.Spec{
		Seed: cfg.Seed, NumUsers: cfg.Users, MeanPageViewsPerMin: 4,
	}, virtualStart())
	if err != nil {
		return nil, err
	}
	gen.InstallProfiles(platform.Store)

	hostList := func(model string) string {
		hosts := platform.PresentationHostsForModel(model)
		quoted := make([]string, len(hosts))
		for i, h := range hosts {
			quoted[i] = fmt.Sprintf("%q", h)
		}
		return strings.Join(quoted, ", ")
	}
	// Figure 13 (CPM) and Figure 14 (CTR counts) query templates, one
	// per model, targeting that model's machines. The window spans the
	// whole run — the paper computes daily values.
	queries := []string{
		fmt.Sprintf(`select 1000*avg(impression.cost) from impression where impression.line_item_id = %d window 30m duration 1h @[Servers in (%s)]`, cfg.LineItemID, hostList("A")),
		fmt.Sprintf(`select 1000*avg(impression.cost) from impression where impression.line_item_id = %d window 30m duration 1h @[Servers in (%s)]`, cfg.LineItemID, hostList("B")),
		fmt.Sprintf(`select count(*) from impression where impression.line_item_id = %d window 30m duration 1h @[Servers in (%s)]`, cfg.LineItemID, hostList("A")),
		fmt.Sprintf(`select count(*) from impression where impression.line_item_id = %d window 30m duration 1h @[Servers in (%s)]`, cfg.LineItemID, hostList("B")),
		fmt.Sprintf(`select count(*) from click where click.line_item_id = %d window 30m duration 1h @[Servers in (%s)]`, cfg.LineItemID, hostList("A")),
		fmt.Sprintf(`select count(*) from click where click.line_item_id = %d window 30m duration 1h @[Servers in (%s)]`, cfg.LineItemID, hostList("B")),
	}
	wins, err := RunScenario(platform.Cluster, queries, func() {
		gen.Run(cfg.Duration, func(r adplatform.BidRequest) { platform.Process(r) })
	})
	if err != nil {
		return nil, err
	}

	firstFloat := func(ws []transport.ResultWindow) float64 {
		for _, rw := range ws {
			for _, row := range rw.Rows {
				if f, ok := row[0].AsFloat(); ok {
					return f
				}
			}
		}
		return 0
	}
	sumInt := func(ws []transport.ResultWindow) int64 {
		var t int64
		for _, rw := range ws {
			for _, row := range rw.Rows {
				if v, ok := row[0].AsInt(); ok {
					t += v
				}
			}
		}
		return t
	}

	res := &E3Result{Config: cfg}
	res.A = E3Side{Model: "A", CPM: firstFloat(wins[0]), Impressions: sumInt(wins[2]), Clicks: sumInt(wins[4])}
	res.B = E3Side{Model: "B", CPM: firstFloat(wins[1]), Impressions: sumInt(wins[3]), Clicks: sumInt(wins[5])}
	if res.A.Impressions > 0 {
		res.A.CTR = float64(res.A.Clicks) / float64(res.A.Impressions)
	}
	if res.B.Impressions > 0 {
		res.B.CTR = float64(res.B.Clicks) / float64(res.B.Impressions)
	}
	return res, nil
}

// Table renders the Figure-15 comparison.
func (r *E3Result) Table() *Table {
	t := &Table{
		ID:      "E3",
		Title:   "A/B model test (§8.3, Figs. 13–15): CPM and CTR per model",
		Columns: []string{"model", "CPM ($)", "impressions", "clicks", "CTR"},
	}
	for _, s := range []E3Side{r.A, r.B} {
		t.AddRow(s.Model, fmtF(s.CPM), fmtI(s.Impressions), fmtI(s.Clicks), fmtF(s.CTR))
	}
	ratio := 0.0
	if r.A.CTR > 0 {
		ratio = r.B.CTR / r.A.CTR
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("CTR lift B/A = %.2f; CPM ratio B/A = %.2f", ratio, r.B.CPM/r.A.CPM),
		"paper: B achieved higher CTR than A while keeping CPM more or less the same")
	return t
}
