package experiments

import (
	"fmt"
	"sort"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/host"
	"scrub/internal/workload"
)

// E5Config parametrizes the §8.5 cannibalization study (Figures 18–19):
// line item λ has budget and relaxed targeting but never serves; the
// query joins auction and impression events on the request id, restricted
// to auctions λ participated in, and reports each winner's win count and
// average winning bid — revealing that λ's whole price band sits below
// every winner's.
type E5Config struct {
	Users    int           // default 1200
	Duration time.Duration // paper: 1 hour; default 2m (scaled)
	// LambdaID and LambdaPrice configure the victim.
	LambdaID    int64   // default 4242
	LambdaPrice float64 // default 1.0
	// RivalPrices are the advisory prices of competitors with identical
	// targeting; default {3.0, 2.6}.
	RivalPrices []float64
	Seed        int64
}

func (c *E5Config) fillDefaults() {
	if c.Users == 0 {
		c.Users = 1200
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Minute
	}
	if c.LambdaID == 0 {
		c.LambdaID = 4242
	}
	if c.LambdaPrice == 0 {
		c.LambdaPrice = 1.0
	}
	if len(c.RivalPrices) == 0 {
		c.RivalPrices = []float64{3.0, 2.6}
	}
	if c.Seed == 0 {
		c.Seed = 8505
	}
}

// E5Winner is one line item's row in Figure 18.
type E5Winner struct {
	LineItemID  string
	Wins        int64
	AvgWinPrice float64
}

// E5Result carries the cannibalization evidence.
type E5Result struct {
	Config  E5Config
	Winners []E5Winner // sorted by wins desc
	// LambdaWins counts λ's own wins (the complaint: zero).
	LambdaWins int64
	// LambdaBandHigh is the top of λ's possible price band.
	LambdaBandHigh float64
	// MinWinnerAvg is the lowest average winning price among winners.
	MinWinnerAvg float64
}

// E5Cannibalization runs the experiment.
func E5Cannibalization(cfg E5Config) (*E5Result, error) {
	cfg.fillDefaults()

	lambda := &adplatform.LineItem{ID: cfg.LambdaID, CampaignID: 1, AdvisoryPrice: cfg.LambdaPrice}
	lambda.SetBudget(1e9)
	items := []*adplatform.LineItem{lambda}
	for i, p := range cfg.RivalPrices {
		rival := &adplatform.LineItem{ID: cfg.LambdaID + int64(i) + 1, CampaignID: 2, AdvisoryPrice: p}
		rival.SetBudget(1e9)
		items = append(items, rival)
	}

	platform, err := adplatform.New(adplatform.Config{
		NumBidServers: 2, NumAdServers: 2, NumPresentationServers: 2,
		LineItems:       items,
		EmitAuctions:    true,
		ExternalWinRate: 0.6,
		Agent:           host.Config{FlushInterval: 10 * time.Millisecond, QueueSize: 1 << 16},
	})
	if err != nil {
		return nil, err
	}
	defer platform.Close()

	gen, err := workload.NewGenerator(workload.Spec{
		Seed: cfg.Seed, NumUsers: cfg.Users, MeanPageViewsPerMin: 3,
	}, virtualStart())
	if err != nil {
		return nil, err
	}
	gen.InstallProfiles(platform.Store)

	// The §8.5 query: auctions where λ participated, joined to the
	// impressions they produced, grouped by the winning line item.
	query := fmt.Sprintf(
		`select auction.winner_line_item_id, count(*), avg(auction.winner_bid_price)
		 from auction, impression
		 where auction.line_item_ids contains %d
		 group by auction.winner_line_item_id window 30s duration 1h @[all]`,
		cfg.LambdaID)
	wins, err := RunScenario(platform.Cluster, []string{query}, func() {
		gen.Run(cfg.Duration, func(r adplatform.BidRequest) { platform.Process(r) })
	})
	if err != nil {
		return nil, err
	}

	res := &E5Result{Config: cfg, LambdaBandHigh: cfg.LambdaPrice * 1.15}
	agg := make(map[string]*E5Winner)
	sums := make(map[string]float64)
	for _, rw := range wins[0] {
		for _, row := range rw.Rows {
			id := row[0].String()
			n, _ := row[1].AsInt()
			avg, _ := row[2].AsFloat()
			w := agg[id]
			if w == nil {
				w = &E5Winner{LineItemID: id}
				agg[id] = w
			}
			w.Wins += n
			sums[id] += avg * float64(n)
		}
	}
	for id, w := range agg {
		if w.Wins > 0 {
			w.AvgWinPrice = sums[id] / float64(w.Wins)
		}
		if id == fmt.Sprint(cfg.LambdaID) {
			res.LambdaWins = w.Wins
			continue
		}
		res.Winners = append(res.Winners, *w)
	}
	sort.Slice(res.Winners, func(i, j int) bool { return res.Winners[i].Wins > res.Winners[j].Wins })
	res.MinWinnerAvg = 0
	for i, w := range res.Winners {
		if i == 0 || w.AvgWinPrice < res.MinWinnerAvg {
			res.MinWinnerAvg = w.AvgWinPrice
		}
	}
	return res, nil
}

// Table renders Figures 18a/18b.
func (r *E5Result) Table() *Table {
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("Line-item cannibalization (§8.5, Figs. 18–19): auctions with λ=%d", r.Config.LambdaID),
		Columns: []string{"winning line item", "wins", "avg winning bid ($)"},
	}
	for _, w := range r.Winners {
		t.AddRow(w.LineItemID, fmtI(w.Wins), fmtF(w.AvgWinPrice))
	}
	t.AddRow(fmt.Sprintf("%d (λ)", r.Config.LambdaID), fmtI(r.LambdaWins), "—")
	t.Notes = append(t.Notes,
		fmt.Sprintf("λ's price band tops out at $%.2f; the lowest winner average is $%.2f — λ is priced out of every auction it enters",
			r.LambdaBandHigh, r.MinWinnerAvg),
		"paper: bumping λ's advisory price immediately started delivery")
	return t
}
