package sampling_test

import (
	"fmt"

	"scrub/internal/sampling"
)

// ExampleEstimateSum demonstrates the paper's Eq. 1–3 multistage
// estimator: 2 of 4 hosts sampled, half the events read at each, the sum
// scaled up with a 95% confidence bound.
func ExampleEstimateSum() {
	samples := []sampling.HostSample{
		{HostID: "bid-01", M: 4, Values: []float64{5, 7}},
		{HostID: "bid-02", M: 4, Values: []float64{6, 6}},
	}
	est, err := sampling.EstimateSum(4, samples, 0.95)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("τ̂ = %.0f (N=%d, n=%d)\n", est.Value, est.NumHosts, est.Sampled)
	// Output:
	// τ̂ = 96 (N=4, n=2)
}

// ExampleSelectHosts shows deterministic host sampling: every component
// derives the same subset from the query id, with no coordination.
func ExampleSelectHosts() {
	hosts := []string{"h1", "h2", "h3", "h4", "h5", "h6", "h7", "h8", "h9", "h10"}
	chosen := sampling.SelectHosts(hosts, 0.3, 12345)
	fmt.Println(chosen)
	again := sampling.SelectHosts(hosts, 0.3, 12345)
	fmt.Println(len(chosen) == len(again))
	// Output:
	// [h10 h2 h5]
	// true
}
