// Package sampling implements Scrub's two sampling levels and the
// accompanying error bounds.
//
// The query language supports sampling the set of hosts and sampling the
// events on each chosen host (paper §3.2); both trade accuracy for load in
// a tunable fashion. Like ApproxHadoop, error bounds for scaled SUM/COUNT
// results come from two-stage (cluster) sampling theory:
//
//	τ̂ = N/n · Σᵢ (Mᵢ/mᵢ · Σⱼ vᵢⱼ)  ± ε                    (Eq. 1)
//	ε  = t_{n−1,1−α/2} · sqrt(V̂ar(τ̂))                      (Eq. 2)
//	V̂ar(τ̂) = N(N−n)·s²ᵤ/n + N/n · Σᵢ Mᵢ(Mᵢ−mᵢ)·s²ᵢ/mᵢ      (Eq. 3)
//
// where N is the number of eligible hosts, n the number sampled, Mᵢ the
// number of matching events at host i, mᵢ the number sampled there, s²ᵢ the
// per-host reading variance, and s²ᵤ the variance of the estimated host
// totals.
package sampling

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
)

// Rate is a sampling fraction in [0, 1]; 1 means keep everything.
type Rate float64

// Valid reports whether the rate is a usable fraction.
func (r Rate) Valid() bool { return r > 0 && r <= 1 }

// EventSampler makes per-event keep/drop decisions at a given rate. It is
// deterministic for a (seed, sequence) pair — two runs over the same stream
// sample identically — and safe for concurrent use from application
// threads, which is required because log() is called on the hot path.
type EventSampler struct {
	thresh uint64 // keep when mixed counter < thresh
	seed   uint64
	seq    atomic.Uint64
}

// NewEventSampler creates a sampler keeping approximately rate of events.
// rate outside (0,1] is clamped: <=0 keeps nothing, >=1 keeps everything.
func NewEventSampler(rate float64, seed uint64) *EventSampler {
	var thresh uint64
	switch {
	case rate >= 1:
		thresh = math.MaxUint64
	case rate <= 0:
		thresh = 0
	default:
		thresh = uint64(rate * float64(math.MaxUint64))
	}
	return &EventSampler{thresh: thresh, seed: seed}
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Keep decides whether the next event is sampled.
func (s *EventSampler) Keep() bool {
	if s.thresh == math.MaxUint64 {
		return true
	}
	if s.thresh == 0 {
		return false
	}
	i := s.seq.Add(1)
	return mix64(s.seed^i) < s.thresh
}

// Seen returns how many events have been offered (excluding rate 0/1 fast
// paths).
func (s *EventSampler) Seen() uint64 { return s.seq.Load() }

// GeometricSampler amortizes Bernoulli(rate) sampling into skip counts:
// instead of drawing per event, it draws the gap until the next kept event
// from the geometric distribution with success probability rate. A stream
// consumer decrements a counter per event (one cheap operation) and only
// re-draws when the counter hits zero, so unsampled events — the vast
// majority at troubleshooting rates — cost O(1) with no RNG work at all.
// The sequence of gaps is deterministic for a seed, so two runs over the
// same stream sample identically. Not safe for concurrent use; callers
// serialize draws (the host agent re-draws under the lock it already
// holds for the sampled event's enqueue).
type GeometricSampler struct {
	rate float64
	lnq  float64 // ln(1 − rate), < 0
	seed uint64
	seq  uint64
}

// NewGeometricSampler creates a sampler keeping approximately rate of
// events. rate is clamped to (0, 1]: rate >= 1 keeps everything (every
// gap is 1); rate <= 0 keeps nothing (NextSkip returns MaxInt64).
func NewGeometricSampler(rate float64, seed uint64) *GeometricSampler {
	s := &GeometricSampler{rate: rate, seed: seed}
	if rate > 0 && rate < 1 {
		s.lnq = math.Log1p(-rate)
	}
	return s
}

// Rate returns the clamped keep probability.
func (s *GeometricSampler) Rate() float64 {
	switch {
	case s.rate >= 1:
		return 1
	case s.rate <= 0:
		return 0
	}
	return s.rate
}

// NextSkip returns k >= 1 meaning "the k-th event offered from now is the
// next kept one" — i.e. skip k−1 events, keep the k-th. Gaps have mean
// 1/rate, so over N events approximately N·rate are kept.
//
//scrub:hotpath
func (s *GeometricSampler) NextSkip() int64 {
	switch {
	case s.rate >= 1:
		return 1
	case s.rate <= 0:
		return math.MaxInt64
	}
	s.seq++
	// u uniform in (0, 1]: the +1 keeps it off zero so Log is finite.
	u := (float64(mix64(s.seed^s.seq)>>11) + 1) / (1 << 53)
	k := int64(math.Log(u)/s.lnq) + 1
	if k < 1 {
		k = 1
	}
	return k
}

// SelectHosts deterministically samples ceil(rate·len(hosts)) hosts using
// the query id as seed, so the query server, hosts, and ScrubCentral all
// agree on the chosen set without coordination. The input order does not
// matter; the result is sorted. rate >= 1 returns all hosts.
func SelectHosts(hosts []string, rate float64, queryID uint64) []string {
	if len(hosts) == 0 {
		return nil
	}
	if rate >= 1 {
		out := make([]string, len(hosts))
		copy(out, hosts)
		sort.Strings(out)
		return out
	}
	if rate <= 0 {
		return nil
	}
	sorted := make([]string, len(hosts))
	copy(sorted, hosts)
	sort.Strings(sorted)
	h := fnv.New64a()
	fmt.Fprintf(h, "scrub-host-sample-%d", queryID)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	rng.Shuffle(len(sorted), func(i, j int) { sorted[i], sorted[j] = sorted[j], sorted[i] })
	n := int(math.Ceil(rate * float64(len(sorted))))
	if n < 1 {
		n = 1
	}
	out := sorted[:n]
	sort.Strings(out)
	return out
}

// HostSample carries one sampled host's contribution to a multistage
// estimate: the total number of matching events at the host (Mᵢ) and the
// sampled readings (vᵢⱼ, so mᵢ = len(Values)). For COUNT estimates each
// reading is 1.
type HostSample struct {
	HostID string
	M      uint64
	Values []float64
}

// Estimate is a scaled aggregate with its confidence interval.
type Estimate struct {
	Value      float64 // τ̂
	Err        float64 // ε: half-width of the confidence interval
	Confidence float64 // 1 − α
	NumHosts   int     // N
	Sampled    int     // n
}

// String renders "τ̂ ± ε".
func (e Estimate) String() string {
	return fmt.Sprintf("%.6g ± %.6g (%.0f%% conf, %d/%d hosts)", e.Value, e.Err, e.Confidence*100, e.Sampled, e.NumHosts)
}

// EstimateSum computes the paper's Eq. 1–3 estimator for a SUM over a
// two-stage sample. totalHosts is N (the eligible population the sample was
// drawn from); samples holds one entry per sampled host. confidence is
// 1−α, e.g. 0.95.
//
// Degenerate cases: n == 1 yields an infinite error bound (t with 0 df);
// a host with M > 0 but no sampled values is an error — the estimator
// cannot scale from zero readings.
func EstimateSum(totalHosts int, samples []HostSample, confidence float64) (Estimate, error) {
	hosts := make([]HostMoments, len(samples))
	for i, s := range samples {
		hosts[i] = MomentsOf(s)
	}
	return EstimateSumMoments(totalHosts, hosts, confidence)
}

// EstimateCount computes a COUNT estimate: every sampled event is a reading
// of 1, so per-host readings reduce to (Mᵢ, mᵢ) with zero within-host
// variance; only between-host variance contributes.
func EstimateCount(totalHosts int, samples []HostSample, confidence float64) (Estimate, error) {
	counts := make([]HostSample, len(samples))
	for i, s := range samples {
		ones := make([]float64, len(s.Values))
		for j := range ones {
			ones[j] = 1
		}
		counts[i] = HostSample{HostID: s.HostID, M: s.M, Values: ones}
	}
	return EstimateSum(totalHosts, counts, confidence)
}
