package sampling

import (
	"fmt"
	"math"

	"scrub/internal/stats"
)

// HostMoments is the sufficient-statistics form of HostSample: ScrubCentral
// keeps per-host Welford accumulators instead of raw readings, so memory
// stays O(hosts · aggregates) per window instead of O(sampled tuples).
type HostMoments struct {
	HostID string
	M      uint64  // Mᵢ: matching events at the host
	N      int     // mᵢ: sampled readings
	Sum    float64 // Σⱼ vᵢⱼ
	Var    float64 // unbiased sample variance s²ᵢ (0 when N < 2)
	// EstimatedM marks Mᵢ as recovered from a Bernoulli event-sampling
	// rate (Mᵢ ≈ mᵢ/q) rather than reported exactly. Eq. 1's within-host
	// term assumes Mᵢ is known — drawing mᵢ of Mᵢ without replacement —
	// and collapses to zero for constant values (COUNT: every sampled
	// value is 1, s²ᵢ = 0) even though mᵢ/q itself carries full binomial
	// error. When Mᵢ is estimated, the within-host uncertainty must be
	// that of the Horvitz–Thompson estimator Σxⱼ/q, whose variance keeps
	// the mean term: (1−q)/q² · Σxⱼ².
	EstimatedM bool
}

// MomentsOf converts a raw sample to moments (test/interop helper).
func MomentsOf(s HostSample) HostMoments {
	var r stats.Running
	for _, v := range s.Values {
		r.Add(v)
	}
	return HostMoments{HostID: s.HostID, M: s.M, N: r.N(), Sum: r.Sum(), Var: r.Var()}
}

// EstimateSumMoments computes Eq. 1–3 from per-host sufficient statistics.
// Semantics match EstimateSum exactly.
func EstimateSumMoments(totalHosts int, hosts []HostMoments, confidence float64) (Estimate, error) {
	n := len(hosts)
	N := float64(totalHosts)
	if n == 0 {
		return Estimate{}, fmt.Errorf("sampling: no host samples")
	}
	if totalHosts < n {
		return Estimate{}, fmt.Errorf("sampling: total hosts %d < sampled %d", totalHosts, n)
	}
	if confidence <= 0 || confidence >= 1 {
		return Estimate{}, fmt.Errorf("sampling: confidence must be in (0,1), got %g", confidence)
	}

	var hostTotals stats.Running
	var within float64
	for _, h := range hosts {
		if h.N == 0 {
			if h.M == 0 {
				hostTotals.Add(0)
				continue
			}
			return Estimate{}, fmt.Errorf("sampling: host %s has M=%d matching events but zero sampled values", h.HostID, h.M)
		}
		Mi := float64(h.M)
		mi := float64(h.N)
		ui := Mi / mi * h.Sum
		hostTotals.Add(ui)
		if h.EstimatedM && Mi > mi {
			// Horvitz–Thompson variance under Bernoulli sampling at rate
			// q = mᵢ/Mᵢ, with Σxⱼ² recovered from the sample moments.
			q := mi / Mi
			sumSq := (mi-1)*h.Var + h.Sum*h.Sum/mi
			within += (1 - q) / (q * q) * sumSq
		} else {
			within += Mi * (Mi - mi) * h.Var / mi
		}
	}

	tau := N / float64(n) * hostTotals.Sum()
	est := Estimate{Value: tau, Confidence: confidence, NumHosts: totalHosts, Sampled: n}
	if n == 1 {
		est.Err = math.Inf(1)
		return est, nil
	}
	variance := N*(N-float64(n))*hostTotals.Var()/float64(n) + N/float64(n)*within
	if variance < 0 {
		variance = 0
	}
	tq, err := stats.TQuantile(1-(1-confidence)/2, float64(n-1))
	if err != nil {
		return Estimate{}, err
	}
	est.Err = tq * math.Sqrt(variance)
	return est, nil
}
