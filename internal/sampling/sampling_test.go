package sampling

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestRateValid(t *testing.T) {
	if !Rate(0.5).Valid() || !Rate(1).Valid() {
		t.Error("valid rates misclassified")
	}
	if Rate(0).Valid() || Rate(-0.1).Valid() || Rate(1.1).Valid() {
		t.Error("invalid rates misclassified")
	}
}

func TestEventSamplerExtremes(t *testing.T) {
	all := NewEventSampler(1, 1)
	none := NewEventSampler(0, 1)
	for i := 0; i < 100; i++ {
		if !all.Keep() {
			t.Fatal("rate 1 dropped an event")
		}
		if none.Keep() {
			t.Fatal("rate 0 kept an event")
		}
	}
	over := NewEventSampler(2, 1)
	if !over.Keep() {
		t.Error("rate > 1 should clamp to keep-all")
	}
	under := NewEventSampler(-1, 1)
	if under.Keep() {
		t.Error("rate < 0 should clamp to keep-none")
	}
}

func TestEventSamplerRateAccuracy(t *testing.T) {
	for _, rate := range []float64{0.01, 0.1, 0.5, 0.9} {
		s := NewEventSampler(rate, 42)
		const n = 200000
		kept := 0
		for i := 0; i < n; i++ {
			if s.Keep() {
				kept++
			}
		}
		got := float64(kept) / n
		// Binomial std dev ≈ sqrt(p(1-p)/n); allow 6 sigma.
		tol := 6 * math.Sqrt(rate*(1-rate)/n)
		if math.Abs(got-rate) > tol {
			t.Errorf("rate %g: kept %g (tolerance %g)", rate, got, tol)
		}
		if s.Seen() != n {
			t.Errorf("Seen = %d, want %d", s.Seen(), n)
		}
	}
}

func TestEventSamplerDeterministic(t *testing.T) {
	a := NewEventSampler(0.3, 7)
	b := NewEventSampler(0.3, 7)
	for i := 0; i < 1000; i++ {
		if a.Keep() != b.Keep() {
			t.Fatal("same seed should sample identically")
		}
	}
	c := NewEventSampler(0.3, 8)
	diff := 0
	a2 := NewEventSampler(0.3, 7)
	for i := 0; i < 1000; i++ {
		if a2.Keep() != c.Keep() {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds should sample differently")
	}
}

func TestEventSamplerConcurrent(t *testing.T) {
	s := NewEventSampler(0.5, 3)
	var wg sync.WaitGroup
	var mu sync.Mutex
	kept := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < 10000; i++ {
				if s.Keep() {
					local++
				}
			}
			mu.Lock()
			kept += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	got := float64(kept) / 80000
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("concurrent keep rate %g, want ~0.5", got)
	}
}

func hostNames(n int) []string {
	hosts := make([]string, n)
	for i := range hosts {
		hosts[i] = "host-" + string(rune('a'+i%26)) + "-" + string(rune('0'+i/26))
	}
	return hosts
}

func TestSelectHostsBasics(t *testing.T) {
	hosts := hostNames(20)
	if SelectHosts(nil, 0.5, 1) != nil {
		t.Error("empty input should return nil")
	}
	if SelectHosts(hosts, 0, 1) != nil {
		t.Error("rate 0 should select none")
	}
	all := SelectHosts(hosts, 1, 1)
	if len(all) != 20 || !sort.StringsAreSorted(all) {
		t.Errorf("rate 1 should return all sorted, got %d", len(all))
	}
	half := SelectHosts(hosts, 0.5, 1)
	if len(half) != 10 {
		t.Errorf("rate 0.5 selected %d of 20", len(half))
	}
	if !sort.StringsAreSorted(half) {
		t.Error("selection should be sorted")
	}
	tiny := SelectHosts(hosts, 0.001, 1)
	if len(tiny) != 1 {
		t.Errorf("tiny rate should still select 1, got %d", len(tiny))
	}
}

func TestSelectHostsDeterministicAndSeedSensitive(t *testing.T) {
	hosts := hostNames(30)
	a := SelectHosts(hosts, 0.3, 99)
	b := SelectHosts(hosts, 0.3, 99)
	if !reflect.DeepEqual(a, b) {
		t.Error("same query id must select the same hosts")
	}
	// Input order must not matter.
	shuffled := make([]string, len(hosts))
	copy(shuffled, hosts)
	rand.New(rand.NewSource(5)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	c := SelectHosts(shuffled, 0.3, 99)
	if !reflect.DeepEqual(a, c) {
		t.Error("input order changed the selection")
	}
	// Different query ids should (almost surely) differ.
	d := SelectHosts(hosts, 0.3, 100)
	if reflect.DeepEqual(a, d) {
		t.Error("different query ids selected identically")
	}
	// Selection must be a subset of the input.
	set := make(map[string]bool)
	for _, h := range hosts {
		set[h] = true
	}
	for _, h := range a {
		if !set[h] {
			t.Errorf("selected unknown host %s", h)
		}
	}
}

func TestEstimateSumExactWhenFull(t *testing.T) {
	// Sampling every host and every event reproduces the exact sum with
	// zero variance.
	samples := []HostSample{
		{HostID: "a", M: 3, Values: []float64{1, 2, 3}},
		{HostID: "b", M: 2, Values: []float64{10, 20}},
	}
	est, err := EstimateSum(2, samples, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 36 {
		t.Errorf("full-sample estimate = %g, want 36", est.Value)
	}
	if est.Err != 0 {
		t.Errorf("full-sample error = %g, want 0", est.Err)
	}
}

func TestEstimateSumScaling(t *testing.T) {
	// 2 of 4 hosts sampled, half the events at each: estimate scales by 4.
	samples := []HostSample{
		{HostID: "a", M: 4, Values: []float64{5, 5}},
		{HostID: "b", M: 4, Values: []float64{5, 5}},
	}
	est, err := EstimateSum(4, samples, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// u_i = 4/2*10 = 20 each; τ̂ = 4/2*(20+20) = 80.
	if est.Value != 80 {
		t.Errorf("estimate = %g, want 80", est.Value)
	}
	if est.NumHosts != 4 || est.Sampled != 2 {
		t.Errorf("N/n = %d/%d", est.NumHosts, est.Sampled)
	}
	if !strings.Contains(est.String(), "±") {
		t.Errorf("String() = %q", est.String())
	}
}

func TestEstimateSumErrors(t *testing.T) {
	good := []HostSample{{HostID: "a", M: 1, Values: []float64{1}}, {HostID: "b", M: 1, Values: []float64{1}}}
	if _, err := EstimateSum(2, nil, 0.95); err == nil {
		t.Error("no samples should fail")
	}
	if _, err := EstimateSum(1, good, 0.95); err == nil {
		t.Error("N < n should fail")
	}
	if _, err := EstimateSum(2, good, 0); err == nil {
		t.Error("confidence 0 should fail")
	}
	if _, err := EstimateSum(2, good, 1); err == nil {
		t.Error("confidence 1 should fail")
	}
	bad := []HostSample{{HostID: "a", M: 5, Values: nil}, {HostID: "b", M: 1, Values: []float64{1}}}
	if _, err := EstimateSum(2, bad, 0.95); err == nil {
		t.Error("M>0 with no values should fail")
	}
	// Host with M=0 and no values is fine — it contributes zero.
	zero := []HostSample{{HostID: "a", M: 0}, {HostID: "b", M: 2, Values: []float64{3, 4}}}
	est, err := EstimateSum(2, zero, 0.95)
	if err != nil || est.Value != 7 {
		t.Errorf("zero-host estimate = %v, %v", est, err)
	}
}

func TestEstimateSumSingleHostInfiniteBound(t *testing.T) {
	est, err := EstimateSum(10, []HostSample{{HostID: "a", M: 10, Values: []float64{1, 2}}}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(est.Err, 1) {
		t.Errorf("n=1 error bound = %g, want +Inf", est.Err)
	}
}

// TestEstimateCoverage is the empirical check of Eqs. 1–3: across many
// independent sampling draws, the 95% interval should contain the true
// total roughly 95% of the time (we assert ≥ 85% to avoid flakiness;
// gross formula errors produce far lower coverage).
func TestEstimateCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const (
		N          = 40  // hosts
		perHost    = 200 // events per host
		trials     = 300
		hostRate   = 0.5
		eventRate  = 0.25
		confidence = 0.95
	)
	// Fixed population: per-host event values with cross-host variation.
	pop := make([][]float64, N)
	var truth float64
	for i := range pop {
		base := rng.Float64() * 10
		pop[i] = make([]float64, perHost)
		for j := range pop[i] {
			v := base + rng.NormFloat64()*2
			pop[i][j] = v
			truth += v
		}
	}
	n := int(hostRate * N)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		hostIdx := rng.Perm(N)[:n]
		samples := make([]HostSample, 0, n)
		for _, hi := range hostIdx {
			events := pop[hi]
			mi := int(eventRate * float64(len(events)))
			idx := rng.Perm(len(events))[:mi]
			vals := make([]float64, mi)
			for k, ei := range idx {
				vals[k] = events[ei]
			}
			samples = append(samples, HostSample{HostID: "h", M: uint64(len(events)), Values: vals})
		}
		est, err := EstimateSum(N, samples, confidence)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.Value-truth) <= est.Err {
			covered++
		}
	}
	coverage := float64(covered) / trials
	if coverage < 0.85 {
		t.Errorf("95%% interval empirical coverage = %.3f, want >= 0.85", coverage)
	}
	if coverage == 1 {
		t.Log("note: coverage 1.0 suggests overly wide bounds (not failing)")
	}
}

func TestEstimateCount(t *testing.T) {
	// 2 of 4 hosts, 10 of 100 events sampled per host → count estimate 400.
	mk := func() []HostSample {
		return []HostSample{
			{HostID: "a", M: 100, Values: make([]float64, 10)},
			{HostID: "b", M: 100, Values: make([]float64, 10)},
		}
	}
	est, err := EstimateCount(4, mk(), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 400 {
		t.Errorf("count estimate = %g, want 400", est.Value)
	}
	// Identical host totals → zero between-host variance; all-ones → zero
	// within-host variance.
	if est.Err != 0 {
		t.Errorf("count error = %g, want 0", est.Err)
	}
}

func BenchmarkEventSamplerKeep(b *testing.B) {
	s := NewEventSampler(0.1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Keep()
	}
}

func BenchmarkEstimateSum(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]HostSample, 50)
	for i := range samples {
		vals := make([]float64, 100)
		for j := range vals {
			vals[j] = rng.Float64()
		}
		samples[i] = HostSample{HostID: "h", M: 1000, Values: vals}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateSum(100, samples, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGeometricSamplerMeanGap(t *testing.T) {
	for _, rate := range []float64{0.5, 0.1, 0.01} {
		s := NewGeometricSampler(rate, 42)
		const draws = 20000
		var total int64
		for i := 0; i < draws; i++ {
			total += s.NextSkip()
		}
		// Keep fraction over the simulated stream = draws / Σ gaps.
		got := float64(draws) / float64(total)
		if got < rate*0.9 || got > rate*1.1 {
			t.Errorf("rate %g: effective keep fraction %g, want within ±10%%", rate, got)
		}
	}
}

func TestGeometricSamplerDeterministic(t *testing.T) {
	a := NewGeometricSampler(0.05, 7)
	b := NewGeometricSampler(0.05, 7)
	c := NewGeometricSampler(0.05, 8)
	same, diff := true, true
	for i := 0; i < 1000; i++ {
		ka := a.NextSkip()
		if ka != b.NextSkip() {
			same = false
		}
		if ka != c.NextSkip() {
			diff = false
		}
	}
	if !same {
		t.Error("same seed must reproduce the same gap sequence")
	}
	if diff {
		t.Error("different seeds should diverge")
	}
}

func TestGeometricSamplerClamps(t *testing.T) {
	all := NewGeometricSampler(1.5, 1)
	if all.Rate() != 1 {
		t.Errorf("rate = %g, want clamp to 1", all.Rate())
	}
	for i := 0; i < 10; i++ {
		if k := all.NextSkip(); k != 1 {
			t.Fatalf("rate>=1 gap = %d, want 1", k)
		}
	}
	none := NewGeometricSampler(-0.1, 1)
	if none.Rate() != 0 {
		t.Errorf("rate = %g, want clamp to 0", none.Rate())
	}
	if k := none.NextSkip(); k != math.MaxInt64 {
		t.Errorf("rate<=0 gap = %d, want MaxInt64", k)
	}
}

func BenchmarkGeometricSamplerNextSkip(b *testing.B) {
	s := NewGeometricSampler(0.1, 1)
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += s.NextSkip()
	}
	_ = sink
}
