package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// MetricNameAnalyzer keeps the obs namespace coherent so dashboards and
// the self-scrape loop never chase a renamed or colliding series:
//
//   - every registration call (Counter/Gauge/Histogram and the
//     Register* variants on an obs Registry) takes a string literal —
//     computed names defeat grep and this analyzer both;
//   - names match scrub_{host,transport,central,coord}_[a-z0-9_]*;
//   - the component segment matches the registering package
//     (internal/host registers scrub_host_*, and so on);
//   - unit suffixes are consistent: counters end in _total, histograms
//     in _ns/_bytes/_seconds/_ratio (gauges are free-form levels);
//   - a name registers at exactly one source location (re-registration
//     from the same line — loops, restarts — is fine; two different
//     lines claiming one series is a collision).
var MetricNameAnalyzer = &Analyzer{
	Name: "metricname",
	Doc:  "obs metric names: literal, scrub_{component}_* with consistent unit suffixes, no duplicates",
	Run:  runMetricName,
}

var (
	metricNameRe = regexp.MustCompile(`^scrub_(host|transport|central|coord)_[a-z][a-z0-9_]*$`)
	histSuffixes = []string{"_ns", "_bytes", "_seconds", "_ratio", "_ns_total", "_bytes_total"}
)

var registerMethods = map[string]string{
	"Counter":           "counter",
	"Gauge":             "gauge",
	"Histogram":         "histogram",
	"RegisterCounter":   "counter",
	"RegisterGauge":     "gauge",
	"RegisterHistogram": "histogram",
}

type metricSite struct {
	name string
	kind string
	pos  token.Pos
	file string
	line int
}

func runMetricName(pass *Pass) {
	var sites []metricSite
	for _, u := range pass.Prog.Packages {
		if strings.HasSuffix(strings.TrimSuffix(u.Path, "_test"), "internal/obs") {
			continue // the registry's own unit tests exercise arbitrary names
		}
		for _, f := range u.Files {
			fname := pass.Prog.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(fname, "_test.go") {
				continue // test doubles may register throwaway series
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				kind, ok := registerMethods[sel.Sel.Name]
				if !ok || len(call.Args) == 0 {
					return true
				}
				if !isObsRegistry(u, sel.X) {
					return true
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					pass.Reportf("metricname", call.Args[0].Pos(),
						"obs %s name must be a string literal (computed names break grep and this check)", kind)
					return true
				}
				name := strings.Trim(lit.Value, "`\"")
				checkMetricName(pass, u, name, kind, lit.Pos())
				p := pass.Prog.Fset.Position(lit.Pos())
				sites = append(sites, metricSite{name: name, kind: kind, pos: lit.Pos(), file: p.Filename, line: p.Line})
				return true
			})
		}
	}

	// Duplicate detection: one series, one registration site.
	byName := make(map[string][]metricSite)
	for _, s := range sites {
		byName[s.name] = append(byName[s.name], s)
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := byName[name]
		first := make(map[string]bool)
		for _, s := range ss {
			first[fmt.Sprintf("%s:%d", s.file, s.line)] = true
		}
		if len(first) > 1 {
			for _, s := range ss[1:] {
				if s.file == ss[0].file && s.line == ss[0].line {
					continue
				}
				pass.Reportf("metricname", s.pos,
					"metric %q already registered at %s:%d — series names must be unique", name, ss[0].file, ss[0].line)
			}
		}
	}
}

func checkMetricName(pass *Pass, u *Package, name, kind string, pos token.Pos) {
	m := metricNameRe.FindStringSubmatch(name)
	if m == nil {
		pass.Reportf("metricname", pos,
			"metric %q does not match scrub_{host|transport|central|coord}_[a-z0-9_]*", name)
		return
	}
	component := m[1]
	// internal/host registers scrub_host_*, etc. Packages outside the
	// four components (cmd/, tests) may register any component's series.
	pkgPath := strings.TrimSuffix(u.Path, "_test")
	for _, c := range []string{"host", "transport", "central", "coord"} {
		if strings.HasSuffix(pkgPath, "internal/"+c) && component != c {
			pass.Reportf("metricname", pos,
				"metric %q registered from %s should use the scrub_%s_ prefix", name, pkgPath, c)
		}
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf("metricname", pos,
				"counter %q must end in _total (monotonic series convention)", name)
		}
	case "histogram":
		okSuffix := false
		for _, s := range histSuffixes {
			if strings.HasSuffix(name, s) {
				okSuffix = true
				break
			}
		}
		if !okSuffix {
			pass.Reportf("metricname", pos,
				"histogram %q must carry a unit suffix (_ns, _bytes, _seconds, _ratio)", name)
		}
	}
}

// isObsRegistry reports whether expr's type is (a pointer to) a named
// type called "Registry" — the obs.Registry, or a testdata stand-in.
func isObsRegistry(u *Package, expr ast.Expr) bool {
	t := u.TypeOf(expr)
	if t == nil {
		return false
	}
	n := namedOf(t)
	return n != nil && n.Obj() != nil && n.Obj().Name() == "Registry"
}
