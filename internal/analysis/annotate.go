package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Scrub's annotation grammar (documented in DESIGN.md §12). Annotations
// are machine-readable comments of the form //scrub:name or
// //scrub:name(args):
//
//   - //scrub:hotpath            (func doc) alloc-freedom seed
//   - //scrub:pooled             (type or struct-field doc/line comment)
//   - //scrub:guardedby(mu)      (struct-field doc/line comment)
//   - //scrub:locked(mu)         (func doc) caller holds mu; the *Locked
//     name suffix convention implies the same
//   - //scrub:allowalloc(reason) (func doc, or on/above a line) hotpath
//     escape hatch
//   - //scrub:allowretain(reason) (on/above a line) poolsafe escape hatch
//   - //scrub:allow(analyzer, reason) (on/above a line) generic per-line
//     suppression for any analyzer
//   - //scrub:longlived          (package doc) the package hosts
//     long-lived components; golifecycle checks its go statements
//   - //scrub:oneshot(reason)    (on/above a go statement) golifecycle
//     escape hatch: the goroutine is bounded by construction
type AnnIndex struct {
	// HotSeeds: FullName()s of functions annotated //scrub:hotpath.
	HotSeeds map[string]bool
	// AllowAllocFuncs: FullName()s whose whole body may allocate.
	AllowAllocFuncs map[string]bool
	// LockedFuncs: FullName()s annotated //scrub:locked(mu).
	LockedFuncs map[string]bool
	// PooledTypes: "pkgpath.TypeName" of //scrub:pooled types.
	PooledTypes map[string]bool
	// PooledFields: "pkgpath.TypeName.field" of //scrub:pooled fields.
	PooledFields map[string]bool
	// GuardedFields: "pkgpath.TypeName.field" -> guarding mutex field name.
	GuardedFields map[string]string
	// LongLivedPkgs: import paths whose package doc carries
	// //scrub:longlived — golifecycle checks their go statements.
	LongLivedPkgs map[string]bool
	// allow: filename -> line -> set of analyzer names suppressed there.
	// A comment suppresses its own line and the line below it, so both
	// trailing and standalone-above placements work.
	allow map[string]map[int]map[string]bool
}

// Allowed reports whether diagnostics from the named analyzer are
// suppressed at file:line.
func (a *AnnIndex) Allowed(analyzer, file string, line int) bool {
	return a.allow[file][line][analyzer]
}

// annRe is anchored: an annotation is a comment that IS the directive
// (`//scrub:name` with no space after the slashes), so prose that merely
// mentions an annotation never registers one.
var annRe = regexp.MustCompile(`^//scrub:([a-z]+)(?:\(([^)]*)\))?`)

type ann struct {
	name string
	arg  string
}

func parseAnns(text string) []ann {
	m := annRe.FindStringSubmatch(text)
	if m == nil {
		return nil
	}
	return []ann{{name: m[1], arg: strings.TrimSpace(m[2])}}
}

func groupAnns(groups ...*ast.CommentGroup) []ann {
	var out []ann
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			out = append(out, parseAnns(c.Text)...)
		}
	}
	return out
}

func indexAnnotations(prog *Program) *AnnIndex {
	idx := &AnnIndex{
		HotSeeds:        make(map[string]bool),
		AllowAllocFuncs: make(map[string]bool),
		LockedFuncs:     make(map[string]bool),
		PooledTypes:     make(map[string]bool),
		PooledFields:    make(map[string]bool),
		GuardedFields:   make(map[string]string),
		LongLivedPkgs:   make(map[string]bool),
		allow:           make(map[string]map[int]map[string]bool),
	}
	for _, u := range prog.Packages {
		for _, f := range u.Files {
			idx.indexFile(prog, u, f)
		}
	}
	return idx
}

func (idx *AnnIndex) suppress(file string, line int, analyzer string) {
	byLine := idx.allow[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		idx.allow[file] = byLine
	}
	for _, l := range [2]int{line, line + 1} {
		set := byLine[l]
		if set == nil {
			set = make(map[string]bool)
			byLine[l] = set
		}
		set[analyzer] = true
	}
}

func (idx *AnnIndex) indexFile(prog *Program, u *Package, f *ast.File) {
	// Package-doc annotations.
	for _, a := range groupAnns(f.Doc) {
		if a.name == "longlived" {
			idx.LongLivedPkgs[u.Path] = true
		}
	}
	// Line-level suppressions from every comment in the file.
	for _, g := range f.Comments {
		for _, c := range g.List {
			for _, a := range parseAnns(c.Text) {
				pos := prog.Fset.Position(c.Pos())
				switch a.name {
				case "allowalloc":
					idx.suppress(pos.Filename, pos.Line, "hotpath")
				case "allowretain":
					idx.suppress(pos.Filename, pos.Line, "poolsafe")
				case "oneshot":
					idx.suppress(pos.Filename, pos.Line, "golifecycle")
				case "allow":
					// First comma-separated token names the analyzer.
					name, _, _ := strings.Cut(a.arg, ",")
					idx.suppress(pos.Filename, pos.Line, strings.TrimSpace(name))
				}
			}
		}
	}
	// Declaration-level annotations.
	for _, d := range f.Decls {
		switch decl := d.(type) {
		case *ast.FuncDecl:
			for _, a := range groupAnns(decl.Doc) {
				fn, _ := u.Info.Defs[decl.Name].(*types.Func)
				if fn == nil {
					continue
				}
				switch a.name {
				case "hotpath":
					idx.HotSeeds[fn.FullName()] = true
				case "allowalloc":
					idx.AllowAllocFuncs[fn.FullName()] = true
				case "locked":
					idx.LockedFuncs[fn.FullName()] = true
				}
			}
		case *ast.GenDecl:
			for _, spec := range decl.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				typeKey := u.Path + "." + ts.Name.Name
				for _, a := range groupAnns(decl.Doc, ts.Doc, ts.Comment) {
					if a.name == "pooled" {
						idx.PooledTypes[typeKey] = true
					}
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					for _, a := range groupAnns(field.Doc, field.Comment) {
						for _, nameID := range field.Names {
							fieldKey := typeKey + "." + nameID.Name
							switch a.name {
							case "pooled":
								idx.PooledFields[fieldKey] = true
							case "guardedby":
								idx.GuardedFields[fieldKey] = a.arg
							}
						}
					}
				}
			}
		}
	}
}

// --- shared type helpers used by several analyzers ---

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

// typeKeyOf renders a named (possibly pointer-wrapped) type as the
// "pkgpath.TypeName" key annotations are indexed under.
func typeKeyOf(t types.Type) string {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return ""
	}
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// fieldKeyOf renders base type + field name as the annotation key, e.g.
// "scrub/internal/transport.Tuple.Values".
func fieldKeyOf(base types.Type, field string) string {
	tk := typeKeyOf(base)
	if tk == "" {
		return ""
	}
	return tk + "." + field
}
