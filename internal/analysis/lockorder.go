package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer defends the fabric's locking discipline two ways:
//
//  1. Lock-order cycles. Every sync.Mutex/RWMutex acquisition is a node
//     keyed by its declaring struct field ("pkg.Type.mu") or package
//     var; acquiring B while holding A (directly, or anywhere in the
//     static call graph of a call made while holding A) is an edge
//     A → B. A cycle among distinct locks means two goroutines can
//     acquire them in opposite orders and deadlock — the classic
//     coordinator ↔ router ↔ hub hazard.
//
//  2. Unreleased-lock paths. A per-function abstract walk forks at
//     branches and tracks the held set (with deferred releases): any
//     path that returns, panics, or falls off the end still holding a
//     lock acquired in that function is reported, as is re-acquiring a
//     lock already held on the path (self-deadlock, including
//     RLock→Lock upgrades) and unlocking a lock no path holds.
//     Functions named *Locked or annotated //scrub:locked(mu) may
//     release locks their caller holds.
//
// Dynamic calls (func values, interface methods) are not chased; a
// hook that acquires locks behind a func field needs a code-review eye
// or a //scrub:allow(lockorder, reason) if it ever trips the checks.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "static lock-acquisition graph: flag order cycles and acquire-without-release paths",
	Run:  runLockOrder,
}

// lockStateCap bounds the abstract-state fan-out per function; beyond
// it the function is skipped rather than half-analyzed.
const lockStateCap = 64

func runLockOrder(pass *Pass) {
	lo := &lockOrder{
		pass:     pass,
		acquires: make(map[string]map[string]bool),
		callees:  make(map[string][]string),
		reach:    make(map[string]map[string]string),
		edges:    make(map[string]map[string]edgeInfo),
		reported: make(map[string]bool),
	}
	lo.summarize()
	lo.computeReach()
	lo.walkAll()
	lo.reportCycles()
}

type edgeInfo struct {
	pos token.Pos
	fn  string
}

type lockOrder struct {
	pass *Pass
	// acquires: FullName -> lock keys the body itself Lock/RLocks.
	acquires map[string]map[string]bool
	// callees: FullName -> statically-resolved called FullNames.
	callees map[string][]string
	// reach: FullName -> key -> first callee FullName on a path that
	// acquires key ("" when acquired directly).
	reach map[string]map[string]string
	// edges: held key -> acquired key -> first witness.
	edges    map[string]map[string]edgeInfo
	reported map[string]bool
}

func (lo *lockOrder) reportOnce(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	k := fmt.Sprintf("%d|%s", pos, msg)
	if lo.reported[k] {
		return
	}
	lo.reported[k] = true
	lo.pass.Reportf("lockorder", pos, "%s", msg)
}

// --- lock-event plumbing ---

// lockMethod classifies a call as a sync.Mutex/RWMutex operation.
type lockMethod struct {
	acquire bool
	read    bool
	try     bool
}

func classifyLockCall(u *Package, call *ast.CallExpr) (*ast.SelectorExpr, lockMethod, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, lockMethod{}, false
	}
	fn := funcFor(u, call.Fun)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, lockMethod{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, lockMethod{}, false
	}
	recv := namedOf(sig.Recv().Type())
	if recv == nil || (recv.Obj().Name() != "Mutex" && recv.Obj().Name() != "RWMutex") {
		return nil, lockMethod{}, false
	}
	switch fn.Name() {
	case "Lock":
		return sel, lockMethod{acquire: true}, true
	case "RLock":
		return sel, lockMethod{acquire: true, read: true}, true
	case "TryLock":
		return sel, lockMethod{acquire: true, try: true}, true
	case "TryRLock":
		return sel, lockMethod{acquire: true, read: true, try: true}, true
	case "Unlock":
		return sel, lockMethod{}, true
	case "RUnlock":
		return sel, lockMethod{read: true}, true
	}
	return nil, lockMethod{}, false
}

// lockRecvKey renders the lock receiver ("c.mu") and resolves its graph
// key: the declaring struct field, a package-level var, or "" for
// locals (tracked by expression only, no graph node).
func lockRecvKey(u *Package, sel *ast.SelectorExpr) (string, string) {
	expr := types.ExprString(sel.X)
	// Promoted method on an embedded mutex: t.Lock() — the selection
	// path's field prefix names the embedded field.
	if s, ok := u.Info.Selections[sel]; ok && s.Kind() == types.MethodVal && len(s.Index()) > 1 {
		base := s.Recv()
		idx := s.Index()
		for i := 0; i < len(idx)-2; i++ {
			st := structUnder(base)
			if st == nil {
				return expr, ""
			}
			base = st.Field(idx[i]).Type()
		}
		st := structUnder(base)
		if st == nil {
			return expr, ""
		}
		return expr, fieldKeyOf(base, st.Field(idx[len(idx)-2]).Name())
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return expr, selFieldKey(u, x)
	case *ast.Ident:
		if v, ok := objOf(u, x).(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return expr, v.Pkg().Path() + "." + v.Name()
		}
	}
	return expr, ""
}

func structUnder(t types.Type) *types.Struct {
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	st, _ := u.(*types.Struct)
	return st
}

// --- phase 1: per-function summaries + transitive reach ---

func (lo *lockOrder) summarize() {
	var names []string
	for name := range lo.pass.Prog.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		node := lo.pass.Prog.Funcs[name]
		acq := make(map[string]bool)
		var calls []string
		inspectSync(node.Decl.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if sel, m, ok := classifyLockCall(node.Pkg, call); ok {
				if m.acquire {
					if _, key := lockRecvKey(node.Pkg, sel); key != "" {
						acq[key] = true
					}
				}
				return
			}
			if fn := funcFor(node.Pkg, call.Fun); fn != nil {
				calls = append(calls, fn.FullName())
			}
		})
		lo.acquires[name] = acq
		lo.callees[name] = calls
	}
}

// inspectSync visits the synchronously-executed parts of a body: it
// descends everywhere except into go-statement call bodies (those run
// on another goroutine, outside the caller's held set).
func inspectSync(body *ast.BlockStmt, visit func(ast.Node)) {
	if body == nil {
		return
	}
	skip := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || skip[n] {
			return !skip[n]
		}
		if g, ok := n.(*ast.GoStmt); ok {
			skip[g.Call] = true
			// Still visit the go statement itself; its spawned body is
			// analyzed as its own function.
			visit(n)
			return true
		}
		visit(n)
		return true
	})
}

// computeReach closes the acquire sets over the static call graph.
// Iteration is over sorted names (and sorted callee keys) so the `via`
// witness recorded for each reachable lock is deterministic.
func (lo *lockOrder) computeReach() {
	var names []string
	for name := range lo.acquires {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := make(map[string]string)
		for k := range lo.acquires[name] {
			r[k] = ""
		}
		lo.reach[name] = r
	}
	for changed := true; changed; {
		changed = false
		for _, name := range names {
			r := lo.reach[name]
			for _, callee := range lo.callees[name] {
				var keys []string
				for k := range lo.reach[callee] {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					if _, ok := r[k]; !ok {
						r[k] = callee
						changed = true
					}
				}
			}
		}
	}
}

// reachChain renders the call path through which fn reaches key.
func (lo *lockOrder) reachChain(fn, key string) string {
	var steps []string
	for depth := 0; depth < 8; depth++ {
		via := lo.reach[fn][key]
		if via == "" {
			break
		}
		steps = append(steps, shortFunc(via))
		fn = via
	}
	if len(steps) == 0 {
		return "directly"
	}
	return "via " + strings.Join(steps, " → ")
}

// shortFunc trims a types.Func FullName — "(*scrub/internal/coord.Coordinator).StartQuery"
// — down to "(*coord.Coordinator).StartQuery".
func shortFunc(full string) string {
	if i := strings.LastIndex(full, "/"); i >= 0 {
		prefix := full[:i]
		// Keep any leading "(" / "(*" that precedes the package path.
		lead := ""
		for _, r := range prefix {
			if r == '(' || r == '*' {
				lead += string(r)
			} else {
				break
			}
		}
		return lead + full[i+1:]
	}
	return full
}

// --- phase 2: per-function abstract walk ---

func (lo *lockOrder) walkAll() {
	var names []string
	for name := range lo.pass.Prog.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		node := lo.pass.Prog.Funcs[name]
		locked := strings.HasSuffix(node.Decl.Name.Name, "Locked") || lo.pass.Prog.Ann.LockedFuncs[name]
		lo.walkFunc(node.Pkg, name, node.Decl.Body, locked)
		// Function literals (closures, goroutine bodies, deferred
		// cleanups) must balance their own acquisitions too. They are
		// walked as locked functions: a deferred cleanup closure
		// legitimately releases locks its enclosing function holds.
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lo.walkFunc(node.Pkg, name+"·lit", lit.Body, true)
			}
			return true
		})
	}
}

type heldLock struct {
	expr string
	key  string
	read bool
	pos  token.Pos
}

type lockState struct {
	held     []heldLock
	deferred []heldLock // releases registered by defer (expr+read only)
}

func (s lockState) clone() lockState {
	return lockState{
		held:     append([]heldLock(nil), s.held...),
		deferred: append([]heldLock(nil), s.deferred...),
	}
}

func (s lockState) sig() string {
	var b strings.Builder
	for _, h := range s.held {
		fmt.Fprintf(&b, "%s/%v;", h.expr, h.read)
	}
	b.WriteByte('|')
	for _, d := range s.deferred {
		fmt.Fprintf(&b, "%s/%v;", d.expr, d.read)
	}
	return b.String()
}

// leftover returns the held locks a return would leak: held minus one
// deferred release per matching expression.
func (s lockState) leftover() []heldLock {
	rem := append([]heldLock(nil), s.held...)
	for _, d := range s.deferred {
		for i, h := range rem {
			if h.expr == d.expr {
				rem = append(rem[:i], rem[i+1:]...)
				break
			}
		}
	}
	return rem
}

func mergeStates(sets ...[]lockState) []lockState {
	seen := make(map[string]bool)
	var out []lockState
	for _, set := range sets {
		for _, s := range set {
			k := s.sig()
			if !seen[k] {
				seen[k] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// branchCtx is one enclosing breakable statement during the walk.
type branchCtx struct {
	isLoop bool
	label  string
	breaks []lockState
	conts  []lockState
}

type lockWalker struct {
	lo      *lockOrder
	u       *Package
	fnName  string
	locked  bool
	stack   []*branchCtx
	aborted bool
}

func (lo *lockOrder) walkFunc(u *Package, fnName string, body *ast.BlockStmt, locked bool) {
	if body == nil {
		return
	}
	lw := &lockWalker{lo: lo, u: u, fnName: fnName, locked: locked}
	out := lw.walkStmts(body.List, []lockState{{}})
	if lw.aborted {
		return
	}
	for _, s := range out {
		for _, h := range s.leftover() {
			lo.reportOnce(body.Rbrace, "function ends while holding %s (acquired at %s)",
				h.expr, lo.pass.Prog.Fset.Position(h.pos))
		}
	}
}

func (lw *lockWalker) walkStmts(stmts []ast.Stmt, in []lockState) []lockState {
	states := in
	for _, s := range stmts {
		if lw.aborted {
			return nil
		}
		states = lw.walkStmt(s, states)
		if len(states) > lockStateCap {
			lw.aborted = true
			return nil
		}
	}
	return states
}

func (lw *lockWalker) walkStmt(s ast.Stmt, in []lockState) []lockState {
	if len(in) == 0 {
		// Unreachable continuation (every path returned); nothing to do.
		return in
	}
	switch x := s.(type) {
	case *ast.ExprStmt:
		return lw.applyExpr(x.X, in)
	case *ast.SendStmt:
		return lw.applyExpr(x.Value, lw.applyExpr(x.Chan, in))
	case *ast.IncDecStmt:
		return lw.applyExpr(x.X, in)
	case *ast.AssignStmt:
		states := in
		for _, rhs := range x.Rhs {
			states = lw.applyExpr(rhs, states)
		}
		return states
	case *ast.DeclStmt:
		states := in
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						states = lw.applyExpr(v, states)
					}
				}
			}
		}
		return states
	case *ast.ReturnStmt:
		states := in
		for _, r := range x.Results {
			states = lw.applyExpr(r, states)
		}
		for _, st := range states {
			for _, h := range st.leftover() {
				lw.lo.reportOnce(x.Pos(), "returns while holding %s (acquired at %s); no defer releases it",
					h.expr, lw.lo.pass.Prog.Fset.Position(h.pos))
			}
		}
		return nil
	case *ast.DeferStmt:
		states := in
		for _, a := range x.Call.Args {
			states = lw.applyExpr(a, states)
		}
		rels := deferredReleases(lw.u, x)
		if len(rels) == 0 {
			return states
		}
		out := make([]lockState, 0, len(states))
		for _, st := range states {
			ns := st.clone()
			ns.deferred = append(ns.deferred, rels...)
			out = append(out, ns)
		}
		return mergeStates(out)
	case *ast.GoStmt:
		// The spawned body runs elsewhere; its literal is walked as its
		// own function in walkAll.
		return in
	case *ast.BlockStmt:
		return lw.walkStmts(x.List, in)
	case *ast.IfStmt:
		states := in
		if x.Init != nil {
			states = lw.walkStmt(x.Init, states)
		}
		// `if mu.TryLock()` / `if !mu.TryLock()`: the acquisition is
		// correlated with the branch taken, so the held fork must flow
		// into exactly one arm, not both.
		if sel, m, neg, ok := tryLockCond(lw.u, x.Cond); ok {
			expr, key := lockRecvKey(lw.u, sel)
			held := lw.applyEvent(lockEvent{
				sel: sel, m: lockMethod{acquire: true, read: m.read},
				expr: expr, key: key, pos: x.Cond.Pos(),
			}, states)
			thenIn, elseIn := held, states
			if neg {
				thenIn, elseIn = states, held
			}
			thenOut := lw.walkStmts(x.Body.List, thenIn)
			elseOut := elseIn
			if x.Else != nil {
				elseOut = lw.walkStmt(x.Else, elseIn)
			}
			return mergeStates(thenOut, elseOut)
		}
		states = lw.applyExpr(x.Cond, states)
		thenOut := lw.walkStmts(x.Body.List, states)
		elseOut := states
		if x.Else != nil {
			elseOut = lw.walkStmt(x.Else, states)
		}
		return mergeStates(thenOut, elseOut)
	case *ast.SwitchStmt:
		states := in
		if x.Init != nil {
			states = lw.walkStmt(x.Init, states)
		}
		if x.Tag != nil {
			states = lw.applyExpr(x.Tag, states)
		}
		return lw.walkCases(x.Body, states, hasDefaultClause(x.Body))
	case *ast.TypeSwitchStmt:
		states := in
		if x.Init != nil {
			states = lw.walkStmt(x.Init, states)
		}
		return lw.walkCases(x.Body, states, hasDefaultClause(x.Body))
	case *ast.SelectStmt:
		ctx := &branchCtx{}
		lw.stack = append(lw.stack, ctx)
		var outs [][]lockState
		for _, cl := range x.Body.List {
			cc := cl.(*ast.CommClause)
			st := in
			if cc.Comm != nil {
				st = lw.walkStmt(cc.Comm, st)
			}
			outs = append(outs, lw.walkStmts(cc.Body, st))
		}
		lw.stack = lw.stack[:len(lw.stack)-1]
		outs = append(outs, ctx.breaks)
		return mergeStates(outs...)
	case *ast.ForStmt:
		st := in
		if x.Init != nil {
			st = lw.walkStmt(x.Init, st)
		}
		if x.Cond != nil {
			st = lw.applyExpr(x.Cond, st)
		}
		return lw.walkLoop("", x.Body, st, x.Cond != nil)
	case *ast.RangeStmt:
		st := lw.applyExpr(x.X, in)
		return lw.walkLoop("", x.Body, st, true)
	case *ast.LabeledStmt:
		switch inner := x.Stmt.(type) {
		case *ast.ForStmt:
			st := in
			if inner.Init != nil {
				st = lw.walkStmt(inner.Init, st)
			}
			if inner.Cond != nil {
				st = lw.applyExpr(inner.Cond, st)
			}
			return lw.walkLoop(x.Label.Name, inner.Body, st, inner.Cond != nil)
		case *ast.RangeStmt:
			return lw.walkLoop(x.Label.Name, inner.Body, lw.applyExpr(inner.X, in), true)
		default:
			return lw.walkStmt(x.Stmt, in)
		}
	case *ast.BranchStmt:
		switch x.Tok {
		case token.BREAK:
			if ctx := lw.findBreakable(x.Label); ctx != nil {
				ctx.breaks = append(ctx.breaks, in...)
			}
			return nil
		case token.CONTINUE:
			if ctx := lw.findLoop(x.Label); ctx != nil {
				ctx.conts = append(ctx.conts, in...)
			}
			return nil
		case token.GOTO:
			lw.aborted = true
			return nil
		}
		return in
	}
	return in
}

// tryLockCond matches an if condition that is exactly a TryLock or
// TryRLock call, optionally negated.
func tryLockCond(u *Package, cond ast.Expr) (sel *ast.SelectorExpr, m lockMethod, neg bool, ok bool) {
	e := ast.Unparen(cond)
	if ue, isNot := e.(*ast.UnaryExpr); isNot && ue.Op == token.NOT {
		neg = true
		e = ast.Unparen(ue.X)
	}
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return nil, lockMethod{}, false, false
	}
	sel, m, ok = classifyLockCall(u, call)
	if !ok || !m.try || !m.acquire {
		return nil, lockMethod{}, false, false
	}
	return sel, m, neg, true
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// walkCases unions the per-case outcomes; without a default clause the
// incoming states survive too (no case taken).
func (lw *lockWalker) walkCases(body *ast.BlockStmt, in []lockState, hasDefault bool) []lockState {
	ctx := &branchCtx{}
	lw.stack = append(lw.stack, ctx)
	var outs [][]lockState
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		st := in
		for _, e := range cc.List {
			st = lw.applyExpr(e, st)
		}
		outs = append(outs, lw.walkStmts(cc.Body, st))
	}
	lw.stack = lw.stack[:len(lw.stack)-1]
	if !hasDefault {
		outs = append(outs, in)
	}
	outs = append(outs, ctx.breaks)
	return mergeStates(outs...)
}

// walkLoop walks a loop body twice (the second pass feeds the first
// pass's exit states back in, so a Lock left held across an iteration
// boundary is seen re-acquiring itself) and merges zero-iteration,
// fall-out, break, and continue states.
func (lw *lockWalker) walkLoop(label string, body *ast.BlockStmt, in []lockState, condExits bool) []lockState {
	ctx := &branchCtx{isLoop: true, label: label}
	lw.stack = append(lw.stack, ctx)
	first := lw.walkStmts(body.List, in)
	again := mergeStates(in, first, ctx.conts)
	second := lw.walkStmts(body.List, again)
	lw.stack = lw.stack[:len(lw.stack)-1]
	if lw.aborted {
		return nil
	}
	outs := [][]lockState{ctx.breaks}
	if condExits {
		// The loop condition can go false: body-exit states escape.
		outs = append(outs, in, first, second, ctx.conts)
	} else if len(ctx.breaks) == 0 {
		// `for { ... }` with no break: the only exits are returns inside;
		// code after the loop is unreachable.
		return nil
	}
	return mergeStates(outs...)
}

func (lw *lockWalker) findBreakable(label *ast.Ident) *branchCtx {
	for i := len(lw.stack) - 1; i >= 0; i-- {
		if label == nil || lw.stack[i].label == label.Name {
			return lw.stack[i]
		}
	}
	return nil
}

func (lw *lockWalker) findLoop(label *ast.Ident) *branchCtx {
	for i := len(lw.stack) - 1; i >= 0; i-- {
		if lw.stack[i].isLoop && (label == nil || lw.stack[i].label == label.Name) {
			return lw.stack[i]
		}
	}
	return nil
}

// lockEvent is one state-affecting action inside a simple statement.
type lockEvent struct {
	sel  *ast.SelectorExpr // lock op receiver (nil for plain calls)
	m    lockMethod
	expr string
	key  string
	call *types.Func // non-lock call, statically resolved
	pos  token.Pos
}

// applyExpr extracts the lock operations and calls inside an expression
// (in evaluation order, skipping function literals and go bodies) and
// folds them through the states.
func (lw *lockWalker) applyExpr(e ast.Expr, in []lockState) []lockState {
	if e == nil || len(in) == 0 {
		return in
	}
	var events []lockEvent
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, m, ok := classifyLockCall(lw.u, call); ok {
			expr, key := lockRecvKey(lw.u, sel)
			events = append(events, lockEvent{sel: sel, m: m, expr: expr, key: key, pos: call.Pos()})
			return true
		}
		if isPanicCall(lw.u, call) {
			events = append(events, lockEvent{pos: call.Pos(), expr: "panic"})
			return true
		}
		if fn := funcFor(lw.u, call.Fun); fn != nil {
			events = append(events, lockEvent{call: fn, pos: call.Pos()})
		}
		return true
	})
	states := in
	for _, ev := range events {
		states = lw.applyEvent(ev, states)
		if len(states) == 0 {
			return states
		}
	}
	return states
}

func isPanicCall(u *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := objOf(u, id).(*types.Builtin)
	return isBuiltin
}

func (lw *lockWalker) applyEvent(ev lockEvent, in []lockState) []lockState {
	lo := lw.lo
	fset := lo.pass.Prog.Fset
	switch {
	case ev.sel != nil && ev.m.acquire:
		var out []lockState
		for _, st := range in {
			for _, h := range st.held {
				if h.expr == ev.expr && !(h.read && ev.m.read) {
					lo.reportOnce(ev.pos, "lock %s is already held on this path (acquired at %s); re-acquiring it deadlocks",
						ev.expr, fset.Position(h.pos))
				}
				// Order edge: held -> acquired, between distinct keys.
				if h.key != "" && ev.key != "" && h.key != ev.key {
					lo.addEdge(h.key, ev.key, ev.pos, lw.fnName)
				}
			}
			ns := st.clone()
			ns.held = append(ns.held, heldLock{expr: ev.expr, key: ev.key, read: ev.m.read, pos: ev.pos})
			if ev.m.try {
				out = append(out, st) // Try* may fail: the unlocked state survives
			}
			out = append(out, ns)
		}
		return mergeStates(out)

	case ev.sel != nil:
		// Release. Only report unlock-without-hold when *no* path holds
		// it (a conditional Lock forks a non-holding state that must not
		// misfire here), and never inside *Locked functions, which
		// release locks their caller took.
		anyHeld := false
		for _, st := range in {
			for _, h := range st.held {
				if h.expr == ev.expr {
					anyHeld = true
				}
			}
		}
		if !anyHeld && !lw.locked {
			lo.reportOnce(ev.pos, "unlock of %s which is not held on any path here (missing Lock or double Unlock)", ev.expr)
			return in
		}
		var out []lockState
		for _, st := range in {
			ns := st.clone()
			for i, h := range ns.held {
				if h.expr == ev.expr {
					ns.held = append(ns.held[:i], ns.held[i+1:]...)
					break
				}
			}
			out = append(out, ns)
		}
		return mergeStates(out)

	case ev.expr == "panic":
		for _, st := range in {
			for _, h := range st.leftover() {
				lo.reportOnce(ev.pos, "panics while holding %s (acquired at %s); no defer releases it",
					h.expr, fset.Position(h.pos))
			}
		}
		return nil

	case ev.call != nil:
		full := ev.call.FullName()
		reach := lo.reach[full]
		if len(reach) == 0 {
			return in
		}
		var keys []string
		for k := range reach {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, st := range in {
			if len(st.held) == 0 {
				continue
			}
			for _, h := range st.held {
				if h.key == "" {
					continue
				}
				for _, k := range keys {
					if k == h.key {
						lo.reportOnce(ev.pos, "calls %s while holding %s; its call graph re-acquires %s (%s) — potential self-deadlock",
							shortFunc(full), h.expr, k, lo.reachChain(full, k))
					} else {
						lo.addEdge(h.key, k, ev.pos, lw.fnName)
					}
				}
			}
		}
		return in
	}
	return in
}

// deferredReleases extracts the unlocks a defer statement will run: a
// direct mu.Unlock() or any unlock inside a deferred function literal.
func deferredReleases(u *Package, d *ast.DeferStmt) []heldLock {
	var out []heldLock
	if sel, m, ok := classifyLockCall(u, d.Call); ok && !m.acquire {
		expr, key := lockRecvKey(u, sel)
		out = append(out, heldLock{expr: expr, key: key, read: m.read})
		return out
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != lit {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, m, ok := classifyLockCall(u, call); ok && !m.acquire {
					expr, key := lockRecvKey(u, sel)
					out = append(out, heldLock{expr: expr, key: key, read: m.read})
				}
			}
			return true
		})
	}
	return out
}

// --- phase 3: cycle detection over the key graph ---

func (lo *lockOrder) addEdge(from, to string, pos token.Pos, fn string) {
	m := lo.edges[from]
	if m == nil {
		m = make(map[string]edgeInfo)
		lo.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = edgeInfo{pos: pos, fn: fn}
	}
}

func (lo *lockOrder) reportCycles() {
	// Tarjan SCCs over the edge graph; every SCC with more than one lock
	// is an acquisition-order cycle.
	var nodes []string
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range lo.edges {
		add(from)
		for to := range tos {
			add(to)
		}
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var tos []string
		for to := range lo.edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	fset := lo.pass.Prog.Fset
	for _, scc := range sccs {
		sort.Strings(scc)
		inSCC := make(map[string]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		var witness []string
		var pos token.Pos
		for _, from := range scc {
			var tos []string
			for to := range lo.edges[from] {
				if inSCC[to] {
					tos = append(tos, to)
				}
			}
			sort.Strings(tos)
			for _, to := range tos {
				e := lo.edges[from][to]
				if !pos.IsValid() || e.pos < pos {
					pos = e.pos
				}
				witness = append(witness, fmt.Sprintf("%s → %s in %s at %s", from, to, shortFunc(e.fn), fset.Position(e.pos)))
			}
		}
		lo.reportOnce(pos, "lock-order cycle among {%s}: %s — concurrent goroutines taking these in different orders deadlock",
			strings.Join(scc, ", "), strings.Join(witness, "; "))
	}
}
