package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// PoolSafeAnalyzer encodes the "sinks must copy what they retain"
// contract from PR 1: memory annotated //scrub:pooled — the agent's
// chunk buffers, a TupleBatch's Tuples slice and each Tuple's Values
// array — is recycled the moment SendBatch returns, so nothing may
// retain it past the owning call without a deep copy.
//
// The check is a per-function taint pass:
//
//   - sources: values of a //scrub:pooled type anywhere, and selections
//     of a //scrub:pooled field on values that flowed in through a
//     parameter (your own copies are clean; what a caller hands you is
//     not);
//   - propagation: selector/index/slice/deref chains, local
//     assignments, range, shallow copies (append/copy keep the taint
//     whenever the element type still carries pooled fields);
//   - sinks: stores into struct fields, globals, or map entries whose
//     root is not itself pooled memory, and channel sends;
//   - sanitizers: calls to functions whose name contains Copy/Clone/Dup
//     (and such functions are themselves exempt — they are the mandated
//     deep-copy implementations);
//   - escape hatch: //scrub:allowretain(reason) on or above the line —
//     the annotation that marks deliberate ownership transfer, like the
//     agent handing a full chunk to its shipper.
var PoolSafeAnalyzer = &Analyzer{
	Name: "poolsafe",
	Doc:  "pooled chunk/batch memory must not be retained without a deep copy",
	Run:  runPoolSafe,
}

var copyNameRe = regexp.MustCompile(`(?i)(copy|clone|dup)`)

func runPoolSafe(pass *Pass) {
	for _, u := range pass.Prog.Packages {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if copyNameRe.MatchString(fd.Name.Name) {
					continue
				}
				ps := &poolState{
					pass:    pass,
					u:       u,
					foreign: make(map[types.Object]bool),
					pooled:  make(map[types.Object]bool),
				}
				// Parameters are foreign (not the receiver: receiver fields
				// are the component's own storage, vetted where filled).
				if fd.Type.Params != nil {
					for _, p := range fd.Type.Params.List {
						for _, name := range p.Names {
							if obj := u.Info.Defs[name]; obj != nil {
								ps.foreign[obj] = true
							}
						}
					}
				}
				ps.walk(fd.Body)
			}
		}
	}
}

type poolState struct {
	pass *Pass
	u    *Package
	// foreign: locals that flowed in through a parameter.
	foreign map[types.Object]bool
	// pooled: locals currently holding (or aliasing) pooled memory.
	pooled map[types.Object]bool
}

func (ps *poolState) reportf(pos token.Pos, format string, args ...any) {
	ps.pass.Reportf("poolsafe", pos, format+" — deep-copy it (e.g. transport.CloneBatch) or annotate //scrub:allowretain(reason)", args...)
}

func (ps *poolState) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			ps.assign(s)
		case *ast.SendStmt:
			if ps.retainsPooled(s.Value) {
				ps.reportf(s.Arrow, "pooled memory sent on a channel leaves the owning scope")
			}
		case *ast.RangeStmt:
			if ps.pooledExpr(s.X) {
				if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
					if obj := ps.u.Info.Defs[id]; obj != nil {
						ps.pooled[obj] = true
					}
				}
			}
			if ps.foreignExpr(s.X) {
				for _, v := range []ast.Expr{s.Key, s.Value} {
					if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
						if obj := ps.u.Info.Defs[id]; obj != nil {
							ps.foreign[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			// copy(dst, pooled) shallow-copies: if the element type still
			// carries pooled fields, the copy retains pooled backing arrays.
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok {
				if b, ok := objOf(ps.u, id).(*types.Builtin); ok && b.Name() == "copy" && len(s.Args) == 2 {
					if (ps.pooledExpr(s.Args[1]) || ps.foreignExpr(s.Args[1])) && ps.elemCarriesPooled(ps.u.TypeOf(s.Args[1])) {
						ps.reportf(s.Pos(), "copy() is a shallow copy: the element type carries //scrub:pooled fields whose arrays stay aliased")
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					ps.bindIdent(name, s.Values[i])
				}
			}
		}
		return true
	})
}

func (ps *poolState) assign(s *ast.AssignStmt) {
	// Multi-value RHS (x, err := f()): taint by result type only.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				obj := objOf(ps.u, id)
				if obj != nil && ps.typePooled(obj.Type()) {
					ps.pooled[obj] = true
				}
			}
		}
		return
	}
	for i := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		lhs, rhs := s.Lhs[i], s.Rhs[i]
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			obj := objOf(ps.u, id)
			if obj == nil {
				continue
			}
			if isPkgLevel(obj) && ps.retainsPooled(rhs) {
				ps.reportf(s.TokPos, "pooled memory stored in package-level variable %s", id.Name)
				continue
			}
			ps.bindIdent(id, rhs)
			continue
		}
		// Store through a selector/index/deref chain.
		root := rootIdent(lhs)
		// Strong update first: x.f = <clean> where f is the pooled-carrying
		// field of tainted (or foreign) local x detaches x from the pool —
		// the deep-copy repair idiom `kept := *t; kept.Values =
		// append([]V(nil), t.Values...)` yields a self-owned value.
		if sel, ok := lhs.(*ast.SelectorExpr); ok && root != nil && !ps.pooledExpr(rhs) {
			if obj := objOf(ps.u, root); obj != nil && (ps.pooled[obj] || ps.foreign[obj]) {
				if base := ps.u.TypeOf(sel.X); base != nil && ps.pass.Prog.Ann.PooledFields[fieldKeyOf(base, sel.Sel.Name)] {
					delete(ps.pooled, obj)
					delete(ps.foreign, obj)
					continue
				}
			}
		}
		rootPooled := false
		if root != nil {
			if obj := objOf(ps.u, root); obj != nil {
				rootPooled = ps.pooled[obj] || ps.typePooled(obj.Type())
			}
		}
		if rootPooled {
			// Storing into pooled memory (chunk internals) is the owner
			// filling its own arena.
			continue
		}
		if ps.retainsPooled(rhs) {
			ps.reportf(s.TokPos, "pooled memory stored into %s, which outlives the batch/chunk call scope", types.ExprString(lhs))
		}
	}
}

func (ps *poolState) bindIdent(id *ast.Ident, rhs ast.Expr) {
	obj := objOf(ps.u, id)
	if obj == nil {
		return
	}
	if ps.pooledExpr(rhs) {
		ps.pooled[obj] = true
	} else {
		delete(ps.pooled, obj)
	}
	if ps.foreignExpr(rhs) {
		ps.foreign[obj] = true
	}
}

// retainsPooled reports whether retaining e retains pooled memory: e is
// pooled itself, or e is a whole foreign value (no pooled field selected)
// whose type still carries //scrub:pooled fields — keeping the struct
// aliases its pooled arrays just as surely as keeping the field.
func (ps *poolState) retainsPooled(e ast.Expr) bool {
	if ps.pooledExpr(e) {
		return true
	}
	return ps.foreignExpr(e) && ps.elemCarriesPooled(ps.u.TypeOf(e))
}

// pooledExpr reports whether e evaluates to (or aliases) pooled memory.
func (ps *poolState) pooledExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := objOf(ps.u, x)
		if obj == nil {
			return false
		}
		return ps.pooled[obj] || ps.typePooled(obj.Type())
	case *ast.SelectorExpr:
		if ps.typePooled(ps.u.TypeOf(e)) {
			return true
		}
		if base := ps.u.TypeOf(x.X); base != nil {
			if ps.pass.Prog.Ann.PooledFields[fieldKeyOf(base, x.Sel.Name)] && ps.foreignExpr(x.X) {
				return true
			}
		}
		return ps.pooledExpr(x.X)
	case *ast.IndexExpr:
		return ps.typePooled(ps.u.TypeOf(e)) || ps.pooledExpr(x.X)
	case *ast.SliceExpr:
		return ps.pooledExpr(x.X)
	case *ast.StarExpr:
		return ps.pooledExpr(x.X)
	case *ast.ParenExpr:
		return ps.pooledExpr(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return ps.pooledExpr(x.X)
		}
	case *ast.TypeAssertExpr:
		return ps.typePooled(ps.u.TypeOf(e)) || ps.pooledExpr(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if ps.pooledExpr(v) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if fn := funcFor(ps.u, x.Fun); fn != nil && copyNameRe.MatchString(fn.Name()) {
			return false // sanitizer: a deep copy owns its memory
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := objOf(ps.u, id).(*types.Builtin); ok && b.Name() == "append" {
				// A shallow slice copy detaches from the pooled backing
				// array, but stays tainted while the element type carries
				// pooled fields of its own.
				for _, a := range x.Args[1:] {
					if ps.pooledExpr(a) || ps.foreignExpr(a) {
						return ps.elemCarriesPooled(ps.u.TypeOf(x))
					}
				}
				return ps.pooledExpr(x.Args[0])
			}
		}
		return ps.typePooled(ps.u.TypeOf(e))
	}
	return false
}

// foreignExpr reports whether e's root flowed in through a parameter.
func (ps *poolState) foreignExpr(e ast.Expr) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := objOf(ps.u, root)
	return obj != nil && ps.foreign[obj]
}

func (ps *poolState) typePooled(t types.Type) bool {
	if t == nil {
		return false
	}
	key := typeKeyOf(t)
	if key != "" && ps.pass.Prog.Ann.PooledTypes[key] {
		return true
	}
	// Slices/arrays of pooled types are pooled too.
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return typeKeyOf(u.Elem()) != "" && ps.pass.Prog.Ann.PooledTypes[typeKeyOf(u.Elem())]
	}
	return false
}

// elemCarriesPooled reports whether t's element type (for slices/arrays)
// or t itself still carries //scrub:pooled fields after a shallow
// element-wise copy.
func (ps *poolState) elemCarriesPooled(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return ps.structCarriesPooled(u.Elem(), 0)
	case *types.Array:
		return ps.structCarriesPooled(u.Elem(), 0)
	}
	return ps.structCarriesPooled(t, 0)
}

func (ps *poolState) structCarriesPooled(t types.Type, depth int) bool {
	if t == nil || depth > 3 {
		return false
	}
	if ps.typePooled(t) {
		return true
	}
	key := typeKeyOf(t)
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if key != "" && ps.pass.Prog.Ann.PooledFields[key+"."+f.Name()] {
			return true
		}
		if ps.structCarriesPooled(f.Type(), depth+1) {
			return true
		}
	}
	return false
}

func isPkgLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}
