package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
)

// HotPathAnalyzer enforces PR 1's zero-allocation contract: every
// function annotated //scrub:hotpath, and everything it statically
// calls, must be free of alloc-inducing constructs. The checked set is
// the transitive closure over resolvable calls (direct functions and
// methods; calls through func values and interfaces are not chased —
// the hot path avoids them by construction, a compiled predicate being
// the one deliberate exception).
//
// Flagged constructs: make/new, map and slice literals, &composite
// literals, append outside the two amortized-reuse idioms
// (`x = append(x, …)` and `return append(param, …)`), closures, string
// concatenation and string<->[]byte conversions, fmt calls, go
// statements, variadic calls (the argument slice), and implicit
// interface conversions of values that are not pointer-shaped (those
// heap-allocate; pointer-shaped values are stored directly in the
// interface word).
//
// Escape hatches: //scrub:allowalloc(reason) on the line (or the line
// above) suppresses one site; on a function's doc comment it exempts —
// and stops traversal into — the whole function (slow paths like pool
// refills).
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "functions reachable from //scrub:hotpath must not allocate",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	prog := pass.Prog
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	hc := &hotChecker{pass: pass, sizes: sizes, via: make(map[string]string)}

	// Seed set, then BFS over the static call graph.
	var queue []string
	for name := range prog.Ann.HotSeeds {
		if _, ok := prog.Funcs[name]; ok {
			hc.via[name] = name
			queue = append(queue, name)
		}
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		node := prog.Funcs[name]
		root := hc.via[name]
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(node.Pkg, call.Fun)
			if fn == nil {
				return true
			}
			callee := fn.FullName()
			if _, declared := prog.Funcs[callee]; !declared {
				return true
			}
			if prog.Ann.AllowAllocFuncs[callee] {
				return true // explicitly exempt slow path; not traversed
			}
			if _, seen := hc.via[callee]; !seen {
				hc.via[callee] = root
				queue = append(queue, callee)
			}
			return true
		})
	}

	for name, root := range hc.via {
		node := prog.Funcs[name]
		hc.check(node.Pkg, node.Decl, root)
	}
}

type hotChecker struct {
	pass  *Pass
	sizes types.Sizes
	// via maps each hot function to the //scrub:hotpath seed that first
	// reached it, for attributable diagnostics.
	via map[string]string
	// curParams is the parameter list of the function being checked,
	// used to recognize the return-append-param builder idiom.
	curParams *ast.FieldList
}

func (hc *hotChecker) reportf(pos token.Pos, root, format string, args ...any) {
	hc.pass.Reportf("hotpath", pos, "hot path (via %s): "+format, append([]any{root}, args...)...)
}

// check walks one hot function's body flagging allocation sites.
func (hc *hotChecker) check(u *Package, decl *ast.FuncDecl, root string) {
	hc.curParams = decl.Type.Params
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			hc.reportf(e.Pos(), root, "function literal allocates a closure")
			return false // body is cold until the closure is called; one report suffices
		case *ast.GoStmt:
			hc.reportf(e.Pos(), root, "go statement allocates a goroutine")
		case *ast.CompositeLit:
			t := u.TypeOf(e)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					hc.reportf(e.Pos(), root, "map literal allocates")
				case *types.Slice:
					hc.reportf(e.Pos(), root, "slice literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					hc.reportf(e.Pos(), root, "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if t, ok := u.TypeOf(e).(*types.Basic); ok && t.Info()&types.IsString != 0 {
					hc.reportf(e.Pos(), root, "string concatenation allocates")
				}
			}
		case *ast.CallExpr:
			hc.checkCall(u, e, parents, root)
		}
		return true
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		return walk(n)
	})

	// Interface conversions at assignments and returns (call arguments
	// are handled in checkCall).
	sig, _ := u.TypeOf(decl.Name).(*types.Signature)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					if s.Tok == token.DEFINE {
						continue
					}
					hc.checkIfaceConv(u, u.TypeOf(s.Lhs[i]), s.Rhs[i], root)
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && sig.Results().Len() == len(s.Results) {
				for i, r := range s.Results {
					hc.checkIfaceConv(u, sig.Results().At(i).Type(), r, root)
				}
			}
		}
		return true
	})
}

func (hc *hotChecker) checkCall(u *Package, call *ast.CallExpr, parents map[ast.Node]ast.Node, root string) {
	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := objOf(u, id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				hc.reportf(call.Pos(), root, "make allocates")
			case "new":
				hc.reportf(call.Pos(), root, "new allocates")
			case "append":
				if !hc.appendAllowed(u, call, parents) {
					hc.reportf(call.Pos(), root, "append may grow and allocate (only `x = append(x, …)` reuse or `return append(param, …)` builders are exempt)")
				}
			}
			return
		}
	}
	if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		// Conversion T(x).
		target := tv.Type
		argT := u.TypeOf(call.Args[0])
		if isIface(target) && argT != nil && !isIface(argT) && !hc.convAllocFree(argT) {
			hc.reportf(call.Pos(), root, "conversion to interface %s boxes a non-pointer-shaped value", types.TypeString(target, nil))
		}
		if allocatingStringConv(target, argT) {
			hc.reportf(call.Pos(), root, "string/[]byte conversion copies and allocates")
		}
		return
	}

	fn := funcFor(u, call.Fun)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		hc.reportf(call.Pos(), root, "fmt.%s allocates", fn.Name())
		return
	}

	// Implicit interface conversions and variadic slices at call sites.
	sig, _ := u.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			last := sig.Params().At(np - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				paramT = sl.Elem()
			}
			if call.Ellipsis == token.NoPos && i == np-1 {
				hc.reportf(call.Pos(), root, "variadic call allocates its argument slice")
			}
		case i < np:
			paramT = sig.Params().At(i).Type()
		}
		if paramT == nil || !isIface(paramT) {
			continue
		}
		argT := u.TypeOf(arg)
		if argT == nil || isIface(argT) || isNil(u, arg) {
			continue
		}
		if !hc.convAllocFree(argT) {
			hc.reportf(arg.Pos(), root, "argument boxes non-pointer-shaped %s into interface %s", types.TypeString(argT, nil), types.TypeString(paramT, nil))
		}
	}
}

// appendAllowed recognizes the two amortized idioms that reuse a
// caller- or owner-managed buffer instead of leaking garbage per call.
func (hc *hotChecker) appendAllowed(u *Package, call *ast.CallExpr, parents map[ast.Node]ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	switch p := parents[call].(type) {
	case *ast.AssignStmt:
		// x = append(x, …): same destination as base, amortized growth.
		if len(p.Lhs) == 1 && len(p.Rhs) == 1 && p.Rhs[0] == call {
			return types.ExprString(p.Lhs[0]) == types.ExprString(call.Args[0])
		}
	case *ast.ReturnStmt:
		// return append(param, …): the caller owns amortization (the
		// AppendEncode-style builder idiom).
		base := rootIdent(call.Args[0])
		if base == nil {
			return false
		}
		v, ok := objOf(u, base).(*types.Var)
		if !ok || hc.curParams == nil {
			return false
		}
		return hc.curParams.Pos() <= v.Pos() && v.Pos() <= hc.curParams.End()
	}
	return false
}

func (hc *hotChecker) checkIfaceConv(u *Package, target types.Type, val ast.Expr, root string) {
	if target == nil || !isIface(target) {
		return
	}
	vt := u.TypeOf(val)
	if vt == nil || isIface(vt) || isNil(u, val) {
		return
	}
	if !hc.convAllocFree(vt) {
		hc.reportf(val.Pos(), root, "assignment boxes non-pointer-shaped %s into interface %s", types.TypeString(vt, nil), types.TypeString(target, nil))
	}
}

// convAllocFree reports whether storing a value of type t in an
// interface cannot allocate: pointer-shaped representations go directly
// in the interface word, and zero-sized values use a shared sentinel.
func (hc *hotChecker) convAllocFree(t types.Type) bool {
	if hc.sizes != nil && hc.sizes.Sizeof(t) == 0 {
		return true
	}
	return pointerShaped(t)
}

func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 1 && pointerShaped(u.Field(0).Type())
	case *types.Array:
		return u.Len() == 1 && pointerShaped(u.Elem())
	}
	return false
}

func isIface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isNil(u *Package, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		_, isNilObj := objOf(u, id).(*types.Nil)
		return isNilObj
	}
	return false
}

func allocatingStringConv(target, arg types.Type) bool {
	if target == nil || arg == nil {
		return false
	}
	tb, _ := target.Underlying().(*types.Basic)
	ab, _ := arg.Underlying().(*types.Basic)
	tSlice, _ := target.Underlying().(*types.Slice)
	aSlice, _ := arg.Underlying().(*types.Slice)
	isByteish := func(s *types.Slice) bool {
		if s == nil {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	// string(bytes/runes) and []byte/[]rune(string) copy.
	if tb != nil && tb.Info()&types.IsString != 0 && isByteish(aSlice) {
		return true
	}
	if ab != nil && ab.Info()&types.IsString != 0 && isByteish(tSlice) {
		return true
	}
	return false
}
