// Package golifecycle is golden-test input for the golifecycle
// analyzer: goroutines in a long-lived component must have a reachable
// stop path (WaitGroup.Done, a channel receive, an exitable event loop)
// or a //scrub:oneshot(reason) annotation.
//
//scrub:longlived
package golifecycle

import "sync"

// Service is the long-lived component under test.
type Service struct {
	wg   sync.WaitGroup
	stop chan struct{}
	work chan int
	out  []int
}

// --- violations ---

func (s *Service) spinForever() {
	n := 0
	go func() { // want `goroutine loops forever with no stop path`
		for {
			n++
		}
	}()
}

func (s *Service) untracked() {
	go func() { // want `goroutine has no tracked lifecycle`
		s.out = append(s.out, 1)
	}()
}

func (s *Service) dynamic(fn func()) {
	go fn() // want `cannot statically resolve the function this goroutine runs`
}

// --- accepted shapes ---

// WaitGroup-tracked shutdown, the server/coord idiom.
func (s *Service) tracked() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.out = append(s.out, 2)
	}()
}

// A select with a stop-channel receive.
func (s *Service) selectLoop() {
	go func() {
		for {
			select {
			case v := <-s.work:
				s.out = append(s.out, v)
			case <-s.stop:
				return
			}
		}
	}()
}

// Ranging over a channel ends when the channel is closed.
func (s *Service) drain() {
	go func() {
		for v := range s.work {
			s.out = append(s.out, v)
		}
	}()
}

// An event loop whose body can exit: the connection-serve shape.
func (s *Service) serve(next func() (int, bool)) {
	go func() {
		for {
			v, ok := next()
			if !ok {
				return
			}
			s.out = append(s.out, v)
		}
	}()
}

// A statically-named method body is resolved and scanned like a literal,
// including through a thin wrapper.
func (s *Service) spawnNamed() {
	go s.runLoop()
	go s.runViaWrapper()
}

func (s *Service) runLoop() {
	for range s.work {
	}
}

func (s *Service) runViaWrapper() { s.runLoop() }

// Bounded by construction: the hatch documents why no stop path exists.
func (s *Service) oneshot() {
	//scrub:oneshot(writes one sample then exits by construction)
	go func() {
		s.out = append(s.out, 3)
	}()
}
