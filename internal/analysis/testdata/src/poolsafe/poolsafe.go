// Package poolsafe is golden-test input for the poolsafe analyzer.
package poolsafe

// Chunk stands in for the agent's pooled chunk type.
//
//scrub:pooled
type Chunk struct{ buf []byte }

// Tuple mirrors transport.Tuple: the type itself is plain, but Values
// aliases pooled memory when the tuple arrives from a caller.
type Tuple struct {
	ID int
	//scrub:pooled
	Values []int
}

// Batch mirrors transport.TupleBatch.
type Batch struct {
	//scrub:pooled
	Tuples []Tuple
}

type holder struct {
	c  *Chunk
	ts []Tuple
	bs []Batch
}

var global *Chunk

func StoreField(h *holder, c *Chunk) {
	h.c = c // want `pooled memory stored into h.c`
}

func StoreGlobal(c *Chunk) {
	global = c // want `pooled memory stored in package-level variable global`
}

func Send(ch chan *Chunk, c *Chunk) {
	ch <- c // want `pooled memory sent on a channel`
}

func ShallowAppend(h *holder, b Batch) {
	h.ts = append(h.ts, b.Tuples...) // want `pooled memory stored into h.ts`
}

func Gather(dst []Tuple, b Batch) {
	copy(dst, b.Tuples) // want `shallow copy`
}

// CloneTuples is exempt by name: functions named *Copy*/*Clone*/*Dup*
// are the mandated deep-copy implementations.
func CloneTuples(ts []Tuple) []Tuple {
	out := make([]Tuple, len(ts))
	for i, t := range ts {
		out[i] = t
		out[i].Values = append([]int(nil), t.Values...)
	}
	return out
}

func StoreClone(h *holder, b Batch) {
	h.ts = CloneTuples(b.Tuples) // ok: sanitizer call returns owned memory
}

func Park(h *holder, c *Chunk) {
	//scrub:allowretain(ownership handoff documented in the golden test)
	h.c = c // ok: explicit escape hatch
}

// Reframe shows the strong-update rule: a tainted local detaches from
// the pool when its pooled field is overwritten with owned memory.
func Reframe(h *holder, b Batch) {
	t := b.Tuples[0]                           // t aliases pooled memory
	t.Values = append([]int(nil), t.Values...) // strong update: t now owns its Values
	h.ts = append(h.ts, t)                     // ok
}

// ReframeWrong is Reframe without the repair — the taint survives.
func ReframeWrong(h *holder, b Batch) {
	t := b.Tuples[0]
	h.ts = append(h.ts, t) // want `pooled memory stored into h.ts`
}

// StoreWhole retains the entire foreign batch. No pooled field is
// selected, but keeping the struct keeps its pooled Tuples array all
// the same — the spill-buffer bug shape.
func StoreWhole(h *holder, b Batch) {
	h.bs = append(h.bs, b) // want `pooled memory stored into h.bs`
}

// SendWhole is the channel form of StoreWhole.
func SendWhole(ch chan Batch, b Batch) {
	ch <- b // want `pooled memory sent on a channel`
}

// KeepCopy is the mandated repair: copy the struct, overwrite its
// pooled field with owned memory, and the result is self-owned.
func KeepCopy(h *holder, t *Tuple) {
	kept := *t
	kept.Values = append([]int(nil), t.Values...)
	h.ts = append(h.ts, kept) // ok: deep-copied before retention
}

// The record-hook buffer handoff (the replay store's shape): Append
// encodes each event into a reusable scratch buffer that the next
// Append overwrites, so sealing must copy the bytes out — retaining the
// scratch, or any reslice of it, hands recycled memory to the reader.

//scrub:pooled
type scratch struct{ b []byte }

type recordStore struct {
	data   []byte
	sealed [][]byte
}

func SealRetainsScratch(s *recordStore, sc *scratch) {
	s.data = sc.b // want `pooled memory stored into s.data`
}

func SealRetainsReslice(s *recordStore, sc *scratch, n int) {
	s.data = sc.b[:n] // want `pooled memory stored into s.data`
}

func SealGlobal(sc *scratch) {
	globalData = sc.b // want `pooled memory stored in package-level variable globalData`
}

var globalData []byte

// SealOwned is the mandated repair, byte-for-byte what Store.sealLocked
// does: the payload lands in a fresh allocation before retention.
func SealOwned(s *recordStore, sc *scratch) {
	cp := make([]byte, len(sc.b))
	copy(cp, sc.b) // ok: byte elements carry no pooled fields
	s.data = cp    // ok: owned memory
}

// SealAppendOwned is the compact form of the same repair.
func SealAppendOwned(s *recordStore, sc *scratch) {
	s.data = append([]byte(nil), sc.b...) // ok: detached from the scratch
}
