// Package metricname is golden-test input for the metricname analyzer.
// Registry stands in for obs.Registry: detection keys on the receiver
// type name, so the golden package needs no real obs dependency.
package metricname

type Registry struct{}

func (r *Registry) Counter(name, help string)               {}
func (r *Registry) Gauge(name, help string)                 {}
func (r *Registry) Histogram(name string, bounds []float64) {}

func register(r *Registry, dynamic string) {
	r.Counter("scrub_host_events_total", "ok")
	r.Counter("scrub_host_events", "x")      // want `must end in _total`
	r.Counter("events_total", "x")           // want `does not match scrub_`
	r.Counter("scrub_query_rows_total", "x") // want `does not match scrub_`
	r.Gauge("scrub_transport_conns", "ok")
	r.Counter("scrub_coord_merges_total", "ok")
	r.Gauge("scrub_coord_shards", "ok")
	r.Histogram("scrub_central_merge_ns", nil)
	r.Histogram("scrub_central_merge", nil) // want `must carry a unit suffix`
	r.Counter(dynamic, "x")                 // want `must be a string literal`

	r.Counter("scrub_host_dup_total", "x")
	r.Counter("scrub_host_dup_total", "x") // want `already registered`

	//scrub:allow(metricname, legacy free-form series kept for dashboard compat)
	r.Gauge("legacy_depth", "ok: suppressed")
}
