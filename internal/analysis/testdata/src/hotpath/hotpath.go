// Package hotpath is golden-test input for the hotpath analyzer: each
// `// want` comment is a regexp one diagnostic on that line must match.
package hotpath

import "fmt"

type iface interface{ M() }

type ptrShaped struct{ p *int } // single pointer field: stored in the iface word

func (ptrShaped) M() {}

type fatStruct struct{ a, b int }

func (fatStruct) M() {}

func sink(i iface)       {}
func variadic(xs ...int) {}
func use(args ...any)    { _ = args }
func helper() []int      { return mk() }
func mk() []int          { return make([]int, 4) } // want `make allocates`

//scrub:allowalloc(slow path: exercised only at startup)
func coldInit() map[string]int { return map[string]int{"a": 1} }

//scrub:hotpath
func Hot(buf []byte, xs []int, s string, p ptrShaped, f fatStruct) []byte {
	m := make(map[string]int) // want `make allocates`
	_ = m
	n := new(int) // want `new allocates`
	_ = n
	sl := []int{1, 2, 3} // want `slice literal allocates`
	_ = sl
	ml := map[int]int{} // want `map literal allocates`
	_ = ml
	pp := &fatStruct{a: 1} // want `&composite literal escapes`
	_ = pp
	fn := func() {} // want `function literal allocates a closure`
	fn()
	go use()           // want `go statement allocates a goroutine`
	s2 := s + "suffix" // want `string concatenation allocates`
	_ = s2
	bs := []byte(s) // want `conversion copies and allocates`
	_ = bs
	fmt.Println(s)     // want `fmt.Println allocates`
	xs = append(xs, 1) // ok: self-assign reuse idiom
	_ = xs
	ys := append(xs, 2) // want `append may grow and allocate`
	_ = ys
	variadic(1, 2, 3) // want `variadic call allocates its argument slice`
	sink(p)           // ok: pointer-shaped value boxes without allocating
	sink(f)           // want `boxes non-pointer-shaped`
	_ = helper()      // transitive: helper -> mk is checked above
	_ = coldInit()    // ok: //scrub:allowalloc function, not traversed
	//scrub:allowalloc(suppressed for the golden test)
	z := make([]int, 8) // ok: line-level escape hatch
	_ = z
	return appendHeader(buf)
}

// appendHeader is reached transitively from Hot; the builder idiom
// (return append(param, …)) is allowed.
func appendHeader(dst []byte) []byte {
	return append(dst, 0x1)
}
