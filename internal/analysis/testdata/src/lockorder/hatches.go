package lockorder

import "sync"

// Everything in this file is clean: the accepted idioms and every
// escape hatch the analyzer honors.

// Clean uses defer for release; the branchy return paths are all fine.
type Clean struct {
	mu    sync.RWMutex
	items map[string]int
}

func (c *Clean) get(k string) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.items[k]
	return v, ok
}

func (c *Clean) put(k string, v int, really bool) {
	c.mu.Lock()
	if !really {
		c.mu.Unlock()
		return
	}
	c.items[k] = v
	c.mu.Unlock()
}

// TryLock acquisition is correlated with the branch taken.
func (c *Clean) tryBump(k string) bool {
	if c.mu.TryLock() {
		c.items[k]++
		c.mu.Unlock()
		return true
	}
	return false
}

func (c *Clean) tryBumpNeg(k string) bool {
	if !c.mu.TryLock() {
		return false
	}
	c.items[k]++
	c.mu.Unlock()
	return true
}

// Hierarchy takes its locks in one consistent order everywhere: no cycle.
type Hierarchy struct {
	outer sync.Mutex
	inner sync.Mutex
	n     int
}

func (h *Hierarchy) both() {
	h.outer.Lock()
	h.inner.Lock()
	h.n++
	h.inner.Unlock()
	h.outer.Unlock()
}

func (h *Hierarchy) again() {
	h.outer.Lock()
	h.inner.Lock()
	h.n--
	h.inner.Unlock()
	h.outer.Unlock()
}

// Owner hands its lock to *Locked helpers: the suffix convention and the
// //scrub:locked annotation both mean "the caller holds mu", so an
// unlock without a visible acquire is accepted there.
type Owner struct {
	mu sync.Mutex
	n  int
}

func (o *Owner) bumpLocked() {
	o.n++
	o.mu.Unlock()
}

//scrub:locked(mu)
func (o *Owner) drop() {
	o.n--
	o.mu.Unlock()
}

// Handoff intentionally returns while holding: ownership transfers, and
// the line-level suppression records why.
type Handoff struct {
	mu sync.Mutex
}

func (h *Handoff) acquireForCaller() {
	h.mu.Lock()
	//scrub:allow(lockorder, ownership transfers to the caller, which must release)
	return
}
