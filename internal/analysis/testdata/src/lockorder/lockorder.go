// Package lockorder is golden-test input for the lockorder analyzer:
// lock-order cycles, lock leaks on return/panic/fall-through paths,
// double locks, interprocedural re-acquisition, and the escape hatches
// (*Locked suffix, //scrub:locked, //scrub:allow, defer, TryLock).
package lockorder

import "sync"

// ABCycle's two methods take its locks in opposite orders.
type ABCycle struct {
	a sync.Mutex
	b sync.Mutex
}

func (c *ABCycle) one() {
	c.a.Lock()
	c.b.Lock() // want `lock-order cycle among \{lockorder.ABCycle.a, lockorder.ABCycle.b\}`
	c.b.Unlock()
	c.a.Unlock()
}

func (c *ABCycle) two() {
	c.b.Lock()
	c.a.Lock()
	c.a.Unlock()
	c.b.Unlock()
}

// Leak returns mid-function with the lock still held.
type Leak struct{ mu sync.Mutex }

func (l *Leak) get(cond bool) int {
	l.mu.Lock()
	if cond {
		return 1 // want `returns while holding l.mu`
	}
	l.mu.Unlock()
	return 0
}

// Tail falls off the end of the function with the lock held.
type Tail struct{ mu sync.Mutex }

func (t *Tail) open() {
	t.mu.Lock()
} // want `function ends while holding t.mu`

// Boom panics with the lock held and no deferred release.
type Boom struct{ mu sync.Mutex }

func (b *Boom) explode() {
	b.mu.Lock()
	panic("bad state") // want `panics while holding b.mu`
}

// Double re-acquires a lock it already holds on the same path.
type Double struct{ mu sync.Mutex }

func (d *Double) twice() {
	d.mu.Lock()
	d.mu.Lock() // want `lock d.mu is already held on this path`
	d.mu.Unlock()
	d.mu.Unlock()
}

// Spurious unlocks a lock no path ever acquired.
type Spurious struct{ mu sync.Mutex }

func (s *Spurious) oops() {
	s.mu.Unlock() // want `unlock of s.mu which is not held on any path here`
}

// Nested calls a method whose call graph re-acquires the held lock.
type Nested struct{ mu sync.Mutex }

func (n *Nested) outer() {
	n.mu.Lock()
	n.inner() // want `calls \(\*lockorder.Nested\).inner while holding n.mu`
	n.mu.Unlock()
}

func (n *Nested) inner() {
	n.mu.Lock()
	defer n.mu.Unlock()
}
