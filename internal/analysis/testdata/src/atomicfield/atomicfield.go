// Package atomicfield is golden-test input for the atomicfield analyzer.
package atomicfield

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	// n is accessed via sync/atomic (legacy style) in Inc.
	n uint64
	//scrub:guardedby(mu)
	buf []int
}

func (c *counter) Inc() { atomic.AddUint64(&c.n, 1) } // ok: atomic use

func (c *counter) Peek() uint64 {
	return c.n // want `plain access races`
}

func (c *counter) Append(x int) {
	c.mu.Lock()
	c.buf = append(c.buf, x) // ok: mu held
	c.mu.Unlock()
}

func (c *counter) AppendDeferred(x int) {
	c.mu.Lock()
	defer c.mu.Unlock()      // deferred release keeps the lock held to the end
	c.buf = append(c.buf, x) // ok
}

func (c *counter) AppendRacy(x int) {
	c.buf = append(c.buf, x) // want `guardedby\(mu\) but c.mu is not held`
}

func (c *counter) AppendUnlocked(x int) {
	c.mu.Lock()
	c.mu.Unlock()
	c.buf = append(c.buf, x) // want `not held`
}

// drainLocked follows the *Locked suffix convention: callers hold mu.
func (c *counter) drainLocked() []int {
	out := c.buf // ok: Locked-suffix method
	c.buf = nil  // ok
	return out
}

// reset documents the same contract with an annotation instead.
//
//scrub:locked(mu)
func (c *counter) reset() {
	c.buf = c.buf[:0] // ok: //scrub:locked(mu)
}

func fresh() *counter {
	c := &counter{}
	c.buf = make([]int, 0, 4) // ok: freshly constructed, unshared
	return c
}
