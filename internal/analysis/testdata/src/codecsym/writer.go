package codecsym

// writer/reader mirror the transport codec's primitives. A method that
// assigns receiver state (buf, off) is a primitive leaf; a method built
// purely from other ops is a derived helper, and derived pairs must
// agree shape-for-shape.

type writer struct{ buf []byte }

func (w *writer) u8(v uint8) { w.buf = append(w.buf, v) }

func (w *writer) u64(v uint64) {
	for i := 0; i < 8; i++ {
		w.buf = append(w.buf, byte(v>>(8*i)))
	}
}

func (w *writer) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// bool is derived: both branches write one u8, so the shape collapses to
// a single op and pairs with the reader's boolv.
func (w *writer) bool(b bool) {
	if b {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// strs is a well-formed derived pair: count then a repeated group.
func (w *writer) strs(ss []string) {
	w.u64(uint64(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

// pair is a broken derived pair: the reader's side reads only one value.
func (w *writer) pair(a, b uint64) {
	w.u64(a)
	w.u64(b) // want `codec asymmetry in helper pair pair: encode writes u64 \(element 2\) that decode never reads`
}

type reader struct {
	buf []byte
	off int
	err bool
}

func (r *reader) fail() { r.err = true }

func (r *reader) u8() uint8 {
	if r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u64() uint64 {
	var v uint64
	if r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	for i := 0; i < 8; i++ {
		v |= uint64(r.buf[r.off+i]) << (8 * i)
	}
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := int(r.u64())
	if r.off+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) boolv() bool { return r.u8() == 1 }

func (r *reader) strs() []string {
	n := r.u64()
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.str())
	}
	return out
}

func (r *reader) pair() uint64 { return r.u64() }
