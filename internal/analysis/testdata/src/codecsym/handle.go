package codecsym

// Handle is the dispatch evidence: every message type must be consumed
// by a type-switch case or type assertion somewhere outside the codec
// machinery. Undispatched is deliberately absent; Internal is absent but
// suppressed at its declaration.
func Handle(m Message) uint64 {
	switch t := m.(type) {
	case Put:
		return t.Val
	case Get:
		return t.ID
	case List:
		return uint64(len(t.Items))
	case Swap:
		return t.N
	case Count:
		return t.A + t.B
	case Grid:
		return uint64(len(t.Items))
	case Muted:
		return uint64(len(t.S))
	case Unnamed:
		return t.V
	case NoDecode:
		return t.V
	case Orphan:
		return t.V
	case Extra:
		return t.ID
	}
	// A bare type assertion counts as dispatch evidence too.
	if f, ok := m.(Flip); ok {
		return f.V
	}
	return 0
}
