// Package codecsym is golden-test input: a miniature of the transport
// wire codec (writer/reader + AppendEncode/Decode/Name switches) with
// deliberate asymmetries and wiring gaps for the codecsym analyzer.
package codecsym

// Message mirrors transport.Message: the tag method registers a type.
type Message interface{ msgTag() uint8 }

const (
	tagPut uint8 = iota + 1
	tagGet
	tagList
	tagSwap
	tagCount
	tagGrid
	tagMuted
	tagUndispatched
	tagUnnamed
	tagNoDecode
	tagOrphan
	tagInternal
	tagFlip
	tagExtra
)

type Put struct {
	Key string
	Val uint64
}

func (Put) msgTag() uint8 { return tagPut }

type Get struct{ ID uint64 }

func (Get) msgTag() uint8 { return tagGet }

type List struct{ Items []string }

func (List) msgTag() uint8 { return tagList }

// Swap's decode arm reads its fields in the wrong order.
type Swap struct {
	Name string
	N    uint64
}

func (Swap) msgTag() uint8 { return tagSwap }

// Count's decode arm reads one more field than encode writes.
type Count struct{ A, B uint64 }

func (Count) msgTag() uint8 { return tagCount }

// Grid's decode loop reads a different width than the encode loop writes.
type Grid struct{ Items []string }

func (Grid) msgTag() uint8 { return tagGrid }

// Muted is asymmetric too, but the decode arm carries an
// //scrub:allow(codecsym, ...) suppression.
type Muted struct{ S string }

func (Muted) msgTag() uint8 { return tagMuted }

// Undispatched is wired through the codec but no type switch or type
// assertion outside it ever consumes the decoded value.
type Undispatched struct{ V uint64 } // want `message Undispatched is never dispatched`
func (Undispatched) msgTag() uint8   { return tagUndispatched }

// Unnamed is missing from the Name switch.
type Unnamed struct{ V uint64 } // want `message Unnamed is missing from the Name switch`
func (Unnamed) msgTag() uint8   { return tagUnnamed }

// NoDecode has an encode arm but no decode arm.
type NoDecode struct{ V uint64 } // want `message NoDecode has a msgTag but no arm in the decode switch`
func (NoDecode) msgTag() uint8   { return tagNoDecode }

// Orphan has a decode arm but no encode arm.
type Orphan struct{ V uint64 } // want `message Orphan has a msgTag but no arm in the encode switch`
func (Orphan) msgTag() uint8   { return tagOrphan }

// Internal is consumed reflectively, so its missing dispatch site is
// suppressed at the declaration.
//
//scrub:allow(codecsym, consumed reflectively by the test harness)
type Internal struct{ V uint64 }

func (Internal) msgTag() uint8 { return tagInternal }

// Flip's msgTag does not return a named tag constant.
type Flip struct{ V uint64 } // want `message Flip: cannot resolve the tag constant`
func (Flip) msgTag() uint8   { return uint8(250) }

// Extra is encoded and decoded via default-clause helper functions, the
// appendEncodeCoord/decodeCoord shape; the asymmetry hides inside them.
type Extra struct {
	ID   uint64
	Note string
}

func (Extra) msgTag() uint8 { return tagExtra }

// AppendEncode mirrors transport.AppendEncode: tag byte, then one arm
// per message type, with a helper hook in the default clause.
func AppendEncode(dst []byte, m Message) []byte {
	w := &writer{buf: dst}
	w.u8(m.msgTag())
	switch t := m.(type) {
	case Put:
		w.str(t.Key)
		w.u64(t.Val)
	case Get:
		w.u64(t.ID)
	case List:
		w.u64(uint64(len(t.Items)))
		for _, s := range t.Items {
			w.str(s)
		}
	case Swap:
		w.str(t.Name)
		w.u64(t.N)
	case Count:
		w.u64(t.A)
		w.u64(t.B)
	case Grid:
		w.u64(uint64(len(t.Items)))
		for _, s := range t.Items {
			w.str(s)
		}
	case Muted:
		w.str(t.S)
	case Undispatched:
		w.u64(t.V)
	case Unnamed:
		w.u64(t.V)
	case NoDecode:
		w.u64(t.V)
	case Internal:
		w.u64(t.V)
	case Flip:
		w.u64(t.V)
	default:
		appendEncodeExtra(w, m)
	}
	return w.buf
}

func appendEncodeExtra(w *writer, m Message) {
	switch t := m.(type) {
	case Extra:
		w.u64(t.ID)
		w.str(t.Note) // want `codec asymmetry for Extra: encode writes str \(element 2\) that decode never reads`
	}
}

// Decode mirrors transport.Decode: tag dispatch with a helper hook in
// the default clause.
func Decode(b []byte) (Message, bool) {
	r := &reader{buf: b}
	tag := r.u8()
	var m Message
	switch tag {
	case tagPut:
		m = Put{Key: r.str(), Val: r.u64()}
	case tagGet:
		m = Get{ID: r.u64()}
	case tagList:
		n := r.u64()
		items := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			items = append(items, r.str())
		}
		m = List{Items: items}
	case tagSwap:
		m = Swap{N: r.u64(), Name: r.str()} // want `codec asymmetry for Swap: element 1: encode writes str but decode reads u64`
	case tagCount:
		m = Count{A: r.u64(), B: r.u64()}
		_ = r.u64() // want `codec asymmetry for Count: decode reads u64 \(element 3\) that encode never writes`
	case tagGrid:
		n := r.u64()
		for i := uint64(0); i < n; i++ {
			_ = r.u64() // want `codec asymmetry for Grid: inside repeated group: element 1: encode writes str but decode reads u64`
		}
		m = Grid{}
	case tagMuted:
		_ = r.u64() //scrub:allow(codecsym, legacy shim keeps the old width)
		m = Muted{}
	case tagUndispatched:
		m = Undispatched{V: r.u64()}
	case tagUnnamed:
		m = Unnamed{V: r.u64()}
	case tagOrphan:
		m = Orphan{V: r.u64()}
	case tagInternal:
		m = Internal{V: r.u64()}
	case uint8(250):
		m = Flip{V: r.u64()}
	default:
		return decodeExtra(r, tag)
	}
	if r.err {
		return nil, false
	}
	return m, true
}

func decodeExtra(r *reader, tag uint8) (Message, bool) {
	switch tag {
	case tagExtra:
		return Extra{ID: r.u64()}, !r.err
	}
	return nil, false
}

// Name mirrors transport.Name, with its own default-clause helper.
func Name(m Message) string {
	switch m.(type) {
	case Put:
		return "Put"
	case Get:
		return "Get"
	case List:
		return "List"
	case Swap:
		return "Swap"
	case Count:
		return "Count"
	case Grid:
		return "Grid"
	case Muted:
		return "Muted"
	case Undispatched:
		return "Undispatched"
	case NoDecode:
		return "NoDecode"
	case Orphan:
		return "Orphan"
	case Internal:
		return "Internal"
	case Flip:
		return "Flip"
	default:
		return nameExtra(m)
	}
}

func nameExtra(m Message) string {
	switch m.(type) {
	case Extra:
		return "Extra"
	}
	return "?"
}
