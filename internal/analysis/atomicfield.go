package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicFieldAnalyzer defends the two concurrency disciplines the
// codebase relies on:
//
//  1. A struct field whose address is ever passed to a sync/atomic
//     function is an atomic field — every other access must also go
//     through sync/atomic (or better, the field should migrate to the
//     atomic.Uint64-style wrapper types, which make mixed access
//     unrepresentable). A single plain read racing an atomic.AddUint64
//     is a data race the race detector only catches when the schedule
//     cooperates; this check catches it always.
//
//  2. A field annotated //scrub:guardedby(mu) may only be touched while
//     mu (a sibling field on the same struct) is held: inside a
//     lexical mu.Lock()/mu.RLock() window, inside a method whose name
//     ends in "Locked" or whose doc carries //scrub:locked(mu), or on a
//     freshly constructed object no other goroutine can see yet.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc:  "sync/atomic fields never accessed plainly; //scrub:guardedby fields only under their mutex",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) {
	// Phase 1: collect every field used atomically, program-wide.
	atomicFields := make(map[string]token.Pos) // field key -> first atomic use
	for _, u := range pass.Prog.Packages {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcFor(u, call.Fun)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if key := selFieldKey(u, sel); key != "" {
						if _, seen := atomicFields[key]; !seen {
							atomicFields[key] = sel.Pos()
						}
					}
				}
				return true
			})
		}
	}

	// Phase 2: flag plain accesses of atomic fields, and guardedby
	// accesses outside their mutex.
	for _, u := range pass.Prog.Packages {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFuncAtomic(pass, u, fd, atomicFields)
			}
		}
	}
}

// selFieldKey resolves a selector to its struct-field annotation key, or
// "" when the selection is not a field.
func selFieldKey(u *Package, sel *ast.SelectorExpr) string {
	s, ok := u.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	// Key on the field's owning (possibly embedded) struct type.
	base := s.Recv()
	idx := s.Index()
	for i := 0; i < len(idx)-1; i++ {
		st, ok := base.Underlying().(*types.Struct)
		if !ok {
			if p, ok := base.Underlying().(*types.Pointer); ok {
				st, ok = p.Elem().Underlying().(*types.Struct)
				if !ok {
					return ""
				}
			} else {
				return ""
			}
		}
		base = st.Field(idx[i]).Type()
	}
	return fieldKeyOf(base, s.Obj().Name())
}

func checkFuncAtomic(pass *Pass, u *Package, fd *ast.FuncDecl, atomicFields map[string]token.Pos) {
	ann := pass.Prog.Ann
	fn, _ := u.Info.Defs[fd.Name].(*types.Func)
	fullName := ""
	if fn != nil {
		fullName = fn.FullName()
	}
	lockedFunc := strings.HasSuffix(fd.Name.Name, "Locked") || ann.LockedFuncs[fullName]

	// fresh: locals assigned from a composite literal in this function —
	// unshared objects whose guarded fields may be initialized lock-free.
	fresh := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if un, ok := rhs.(*ast.UnaryExpr); ok && un.Op == token.AND {
				rhs = ast.Unparen(un.X)
			}
			if _, isLit := rhs.(*ast.CompositeLit); isLit {
				if obj := objOf(u, id); obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})

	// held: rendered receiver-expression strings of currently held
	// mutexes ("a.mu", "aq.mu"), maintained by a linear statement scan.
	held := make(map[string]bool)
	// reported dedupes per line+field: `c.buf = append(c.buf, x)` touches
	// the field twice but is one violation.
	reported := make(map[string]bool)
	reportOnce := func(pos token.Pos, key, format string, args ...any) {
		line := pass.Prog.Fset.Position(pos).Line
		k := fmt.Sprintf("%s:%d", key, line)
		if reported[k] {
			return
		}
		reported[k] = true
		pass.Reportf("atomicfield", pos, format, args...)
	}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					held[types.ExprString(sel.X)] = true
				case "Unlock", "RUnlock":
					delete(held, types.ExprString(sel.X))
				}
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to function end.
			if sel, ok := ast.Unparen(e.Call.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
					return false // skip: do not treat as a release
				}
			}
		case *ast.SelectorExpr:
			key := selFieldKey(u, e)
			if key == "" {
				return true
			}
			if _, isAtomic := atomicFields[key]; isAtomic && !isAtomicUse(u, e) {
				reportOnce(e.Sel.Pos(), key,
					"field %s is accessed with sync/atomic elsewhere; this plain access races (migrate to atomic.Uint64-style types)", key)
			}
			if mu, guarded := ann.GuardedFields[key]; guarded {
				if lockedFunc {
					return true
				}
				if root := rootIdent(e); root != nil {
					if obj := objOf(u, root); obj != nil && fresh[obj] {
						return true
					}
				}
				// The guard must be held on the same receiver expression:
				// "aq.mu" held covers "aq.cur".
				guardExpr := types.ExprString(e.X) + "." + mu
				if !held[guardExpr] {
					reportOnce(e.Sel.Pos(), key,
						"field %s is //scrub:guardedby(%s) but %s is not held here", key, mu, guardExpr)
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// isAtomicUse reports whether sel is the &x.f argument of a sync/atomic
// call (legal) rather than a plain read/write. Because the analyzer only
// records fields from phase 1's &-to-atomic scan, a selector is an
// atomic use exactly when its address is taken for such a call; we
// approximate by checking the parent chain rendered in phase 2 — the
// selector appears under &(...) passed to sync/atomic. Rather than
// re-deriving parents, re-scan the file once per call (bodies are small).
func isAtomicUse(u *Package, sel *ast.SelectorExpr) bool {
	// Find the enclosing file.
	var file *ast.File
	for _, f := range u.Files {
		if f.Pos() <= sel.Pos() && sel.End() <= f.End() {
			file = f
			break
		}
	}
	if file == nil {
		return false
	}
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcFor(u, call.Fun)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			if ast.Unparen(un.X) == sel {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
