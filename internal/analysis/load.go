// Package analysis is Scrub's custom static-analysis suite: a small,
// stdlib-only framework (go/parser + go/types over `go list` export
// data) plus the repo-specific analyzers cmd/scrubvet runs in CI.
//
// The analyzers encode the contracts that keep Scrub's host impact
// minimal — contracts that previously lived only in comments and a
// handful of AllocsPerRun tests:
//
//   - hotpath: code reachable from a //scrub:hotpath function must not
//     allocate (PR 1's zero-allocation Log path).
//   - poolsafe: pooled chunk/batch memory must not be retained past the
//     owning scope without a deep copy (the Sink contract).
//   - atomicfield: a field accessed via sync/atomic is never touched
//     plainly; //scrub:guardedby(mu) fields are only touched with the
//     lock held.
//   - metricname: every obs series uses a literal, unique
//     scrub_{host,transport,central}_* name with consistent unit
//     suffixes.
//
// See DESIGN.md §12 for the annotation grammar.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one analysis unit: a type-checked package with its syntax.
// When a package has in-package test files they are folded into the same
// unit (mirroring `go vet`), so test-only violations are caught too.
// External _test packages become their own unit with IsXTest set.
type Package struct {
	Path    string // import path ("scrub/internal/host")
	Name    string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	IsXTest bool
}

// Program is everything the analyzers see: all loaded units, the shared
// FileSet, and the annotation index extracted from their comments.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	Ann      *AnnIndex
	// Funcs maps a function's types.Func.FullName() to its declaration,
	// across every unit — the whole-program call-graph substrate the
	// hotpath analyzer traverses.
	Funcs map[string]*FuncNode
}

// FuncNode ties a declared function to the unit that type-checked it.
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	ForTest      string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// LoadConfig parametrizes Load.
type LoadConfig struct {
	// Dir is the module root (defaults to ".").
	Dir string
	// Patterns are `go list` package patterns (default "./...").
	Patterns []string
	// Tests folds _test.go files into the loaded units (default in
	// scrubvet; the contracts apply to test sinks too).
	Tests bool
}

// Load enumerates, parses, and type-checks the requested packages.
// Imports — stdlib and module-internal alike — are resolved from
// compiler export data produced by `go list -export`, so no package is
// type-checked twice and no non-stdlib importer is needed.
func Load(cfg LoadConfig) (*Program, error) {
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = []string{"./..."}
	}
	// The package list and the export-data list are independent `go list`
	// invocations; run them concurrently (the -export one compiles
	// anything stale and dominates cold-cache wall time).
	var (
		pkgs, deps       []listedPkg
		pkgsErr, depsErr error
		listWG           sync.WaitGroup
	)
	listWG.Add(2)
	go func() {
		defer listWG.Done()
		pkgs, pkgsErr = goList(cfg.Dir, append([]string{"-json=ImportPath,Name,Dir,GoFiles,TestGoFiles,XTestGoFiles"}, cfg.Patterns...))
	}()
	go func() {
		defer listWG.Done()
		// Export data for every dependency, test-only dependencies
		// included. ForTest variants (the "pkg [pkg.test]" shadow builds)
		// are skipped: the plain build's export data is the canonical one.
		depArgs := append([]string{"-deps", "-export", "-json=ImportPath,Export,ForTest"}, cfg.Patterns...)
		if cfg.Tests {
			depArgs = append([]string{"-test"}, depArgs...)
		}
		deps, depsErr = goList(cfg.Dir, depArgs)
	}()
	listWG.Wait()
	if pkgsErr != nil {
		return nil, pkgsErr
	}
	if depsErr != nil {
		return nil, depsErr
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.ForTest != "" || d.Export == "" {
			continue
		}
		if _, ok := exports[d.ImportPath]; !ok {
			exports[d.ImportPath] = d.Export
		}
	}

	fset := token.NewFileSet()
	imp := &lockedImporter{imp: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})}

	// Units never import each other in source form — every dependency
	// resolves from export data — so parsing and type-checking fan out
	// across units. The FileSet is internally synchronized; the shared
	// export-data importer is serialized by lockedImporter.
	type unitSpec struct {
		path, name, dir string
		files           []string
		xtest           bool
	}
	var specs []unitSpec
	for _, lp := range pkgs {
		if lp.ForTest != "" {
			continue
		}
		libFiles := lp.GoFiles
		files := libFiles
		if cfg.Tests {
			files = append(append([]string{}, libFiles...), lp.TestGoFiles...)
		}
		if len(files) > 0 {
			specs = append(specs, unitSpec{lp.ImportPath, lp.Name, lp.Dir, files, false})
		}
		if cfg.Tests && len(lp.XTestGoFiles) > 0 {
			specs = append(specs, unitSpec{lp.ImportPath + "_test", lp.Name + "_test", lp.Dir, lp.XTestGoFiles, true})
		}
	}

	units := make([]*Package, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp unitSpec) {
			defer wg.Done()
			units[i], errs[i] = checkUnit(fset, imp, sp.path, sp.name, sp.dir, sp.files, sp.xtest)
		}(i, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	prog := &Program{Fset: fset, Packages: units, Funcs: make(map[string]*FuncNode)}
	prog.index()
	return prog, nil
}

// lockedImporter serializes a shared export-data importer (its package
// cache is not safe for concurrent Import calls).
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (li *lockedImporter) Import(path string) (*types.Package, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.imp.Import(path)
}

// index builds the annotation index and the whole-program function map
// once every unit is type-checked.
func (prog *Program) index() {
	prog.Ann = indexAnnotations(prog)
	if prog.Funcs == nil {
		prog.Funcs = make(map[string]*FuncNode)
	}
	for _, u := range prog.Packages {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
					prog.Funcs[fn.FullName()] = &FuncNode{Pkg: u, Decl: fd}
				}
			}
		}
	}
}

func checkUnit(fset *token.FileSet, imp types.Importer, path, name, dir string, files []string, xtest bool) (*Package, error) {
	u := &Package{Path: path, Name: name, Dir: dir, IsXTest: xtest}
	for _, f := range files {
		af, err := parser.ParseFile(fset, filepath.Join(dir, f), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", f, err)
		}
		u.Files = append(u.Files, af)
	}
	u.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, u.Files, u.Info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	u.Types = pkg
	return u, nil
}

func goList(dir string, args []string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
