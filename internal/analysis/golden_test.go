package analysis

// Golden tests: each analyzer runs over a small package under
// testdata/src/<name>/ whose `// want` comments state, as regexps, the
// diagnostics expected on their line. The test fails on any unexpected
// diagnostic and on any unfulfilled expectation, so the testdata files
// double as executable documentation of both the violations caught and
// the escape hatches accepted.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func TestGolden(t *testing.T) {
	cases := []struct {
		name      string
		analyzers []*Analyzer
	}{
		{"hotpath", []*Analyzer{HotPathAnalyzer}},
		{"poolsafe", []*Analyzer{PoolSafeAnalyzer}},
		{"atomicfield", []*Analyzer{AtomicFieldAnalyzer}},
		{"metricname", []*Analyzer{MetricNameAnalyzer}},
		{"codecsym", []*Analyzer{CodecSymAnalyzer}},
		{"lockorder", []*Analyzer{LockOrderAnalyzer}},
		{"golifecycle", []*Analyzer{GoLifecycleAnalyzer}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runGolden(t, tc.name, tc.analyzers)
		})
	}
}

func runGolden(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var fileNames []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			fileNames = append(fileNames, e.Name())
		}
	}
	sort.Strings(fileNames)

	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, fn := range fileNames {
		af, err := parser.ParseFile(fset, filepath.Join(dir, fn), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, af)
		for _, im := range af.Imports {
			p, _ := strconv.Unquote(im.Path.Value)
			imports[p] = true
		}
	}

	exports := exportData(t, imports)
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", name, err)
	}
	u := &Package{Path: name, Name: name, Dir: dir, Files: files, Types: pkg, Info: info}
	prog := &Program{Fset: fset, Packages: []*Package{u}}
	prog.index()

	diags := Run(prog, analyzers)
	wants := parseWants(t, fset, files)

	matched := make(map[*wantExp]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		var hit *wantExp
		for _, w := range wants[key] {
			if !matched[w] && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		matched[hit] = true
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

type wantExp struct{ re *regexp.Regexp }

var wantTokenRe = regexp.MustCompile("`([^`]*)`")

// parseWants collects `// want` expectations keyed by "file:line". Each
// backtick-quoted token after "want" is one expected-diagnostic regexp.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*wantExp {
	t.Helper()
	wants := make(map[string][]*wantExp)
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantTokenRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &wantExp{re: re})
				}
			}
		}
	}
	return wants
}

// exportData compiles export data for the testdata package's (stdlib)
// imports and their dependencies via `go list -deps -export`.
func exportData(t *testing.T, imports map[string]bool) map[string]string {
	t.Helper()
	if len(imports) == 0 {
		return nil
	}
	args := []string{"-deps", "-export", "-json=ImportPath,Export"}
	for p := range imports {
		args = append(args, p)
	}
	sort.Strings(args[3:])
	pkgs, err := goList(".", args)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out
}
