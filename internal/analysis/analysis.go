package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// Diagnostic is one finding: where, which contract, and what was
// violated.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is the per-run context handed to an analyzer. Analyzers are
// whole-program: each Run sees every loaded unit (the hot-path call
// graph and duplicate-metric checks are inherently cross-package).
type Pass struct {
	Prog   *Program
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos unless a line-level suppression
// (//scrub:allowalloc, //scrub:allowretain, //scrub:allow(name, …))
// covers it.
func (p *Pass) Reportf(analyzer string, pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	if p.Prog.Ann.Allowed(analyzer, position.Filename, position.Line) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: analyzer, Message: fmt.Sprintf(format, args...)})
}

// TypeOf is Info.Types[e].Type across whichever unit declared e's file;
// the caller passes the owning unit.
func (u *Package) TypeOf(e ast.Expr) types.Type {
	if tv, ok := u.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := u.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := u.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Analyzer is one named contract checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full scrubvet suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathAnalyzer,
		PoolSafeAnalyzer,
		AtomicFieldAnalyzer,
		MetricNameAnalyzer,
		CodecSymAnalyzer,
		LockOrderAnalyzer,
		GoLifecycleAnalyzer,
	}
}

// Run executes the analyzers concurrently over the shared program —
// type-checked packages are read-only here, and each pass reports into
// its own slice — then merges the deduped, position-sorted findings.
// On a single-CPU machine goroutine fan-out is pure scheduling overhead
// (measured ~15% slower in BenchmarkRun*), so Run falls back to
// sequential execution when GOMAXPROCS is 1.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	if runtime.GOMAXPROCS(0) == 1 {
		return run(prog, analyzers, 1)
	}
	return run(prog, analyzers, 0)
}

// RunSequential runs the passes one at a time (the pre-parallelism
// behavior, kept for wall-time comparisons; see EXPERIMENTS.md).
func RunSequential(prog *Program, analyzers []*Analyzer) []Diagnostic {
	return run(prog, analyzers, 1)
}

func run(prog *Program, analyzers []*Analyzer, parallelism int) []Diagnostic {
	results := make([][]Diagnostic, len(analyzers))
	if parallelism == 1 {
		for i, a := range analyzers {
			results[i] = runOne(prog, a)
		}
	} else {
		var wg sync.WaitGroup
		for i, a := range analyzers {
			wg.Add(1)
			go func(i int, a *Analyzer) {
				defer wg.Done()
				results[i] = runOne(prog, a)
			}(i, a)
		}
		wg.Wait()
	}
	seen := make(map[string]bool)
	var out []Diagnostic
	for _, diags := range results {
		for _, d := range diags {
			key := fmt.Sprintf("%s:%d:%d|%s|%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			if !seen[key] {
				seen[key] = true
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		return out[i].Message < out[j].Message
	})
	return out
}

func runOne(prog *Program, a *Analyzer) []Diagnostic {
	var diags []Diagnostic
	pass := &Pass{Prog: prog, report: func(d Diagnostic) {
		diags = append(diags, d)
	}}
	a.Run(pass)
	return diags
}

// funcFor resolves a called expression to the *types.Func it names, or
// nil when the callee is dynamic (func value, interface method).
func funcFor(u *Package, fun ast.Expr) *types.Func {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		fn, _ := u.Info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := u.Info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// rootIdent walks selector/index/slice/star/paren chains to the base
// identifier, or nil (e.g. when the base is a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object in either Uses or Defs.
func objOf(u *Package, id *ast.Ident) types.Object {
	if o := u.Info.Uses[id]; o != nil {
		return o
	}
	return u.Info.Defs[id]
}
