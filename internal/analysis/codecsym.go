package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CodecSymAnalyzer proves the hand-written wire codec symmetric and
// exhaustive. A codec package is any package declaring `writer` and
// `reader` types plus `AppendEncode` and `Decode` functions (transport,
// in this tree). For every registered message type — a named type with a
// `msgTag` method — the analyzer:
//
//   - extracts the ordered sequence of writer-method calls from the
//     type's AppendEncode switch arm (following the default clause into
//     helpers like appendEncodeCoord, and loops into repeated groups)
//     and the ordered reader-method calls from the matching Decode arm
//     (paired via the tag constant msgTag returns), then diagnoses any
//     field-order, width, or count mismatch between the two;
//   - checks composite writer/reader helper pairs (strs, u64s,
//     windowPartials, …) the same way, so an asymmetry inside a shared
//     helper is caught once at its definition;
//   - proves exhaustiveness: the type must appear in the encode switch,
//     the decode switch, the Name switch (when the package declares
//     one), and at least one dispatch site — a `switch m.(type)` case or
//     type assertion outside the codec machinery — so adding message #16
//     without wiring it everywhere is a vet failure, not a runtime
//     "unknown message".
var CodecSymAnalyzer = &Analyzer{
	Name: "codecsym",
	Doc:  "wire-codec encode/decode symmetry and message-type exhaustiveness",
	Run:  runCodecSym,
}

func runCodecSym(pass *Pass) {
	for _, u := range pass.Prog.Packages {
		if u.IsXTest {
			continue
		}
		cs := newCodecState(pass, u)
		if cs != nil {
			cs.check()
		}
	}
}

// shapeItem is one element of a normalized codec shape: either a single
// primitive op (a writer/reader method call, canonical name) or a
// repeated group (a loop body).
type shapeItem struct {
	op  string
	pos token.Pos
	rep []shapeItem // non-nil: repeated group; op is ""
}

func describeItem(it shapeItem) string {
	if it.rep != nil {
		return "a repeated group"
	}
	return it.op
}

type codecState struct {
	pass *Pass
	u    *Package
	// wNamed/rNamed are the package's writer/reader types; a method call
	// on either is a codec op.
	wNamed, rNamed *types.Named
	// excluded are the codec-machinery declarations (codec switches,
	// msgTag methods, writer/reader methods, Name) that never count as
	// dispatch sites.
	excluded map[*ast.FuncDecl]bool
}

// newCodecState returns nil unless u structurally looks like a codec
// package: writer + reader types and AppendEncode + Decode functions.
func newCodecState(pass *Pass, u *Package) *codecState {
	scope := u.Types.Scope()
	w, _ := scope.Lookup("writer").(*types.TypeName)
	r, _ := scope.Lookup("reader").(*types.TypeName)
	if w == nil || r == nil {
		return nil
	}
	wn := namedOf(w.Type())
	rn := namedOf(r.Type())
	if wn == nil || rn == nil {
		return nil
	}
	cs := &codecState{pass: pass, u: u, wNamed: wn, rNamed: rn, excluded: make(map[*ast.FuncDecl]bool)}
	if cs.funcDecl("AppendEncode") == nil || cs.funcDecl("Decode") == nil {
		return nil
	}
	return cs
}

// funcDecl finds a package-level function declaration by name.
func (cs *codecState) funcDecl(name string) *ast.FuncDecl {
	for _, f := range cs.u.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

// registered is one message type: named type with a msgTag method.
type registeredMsg struct {
	obj *types.TypeName
	// tagConst is the constant msgTag returns (nil when unresolvable).
	tagConst types.Object
	tagDecl  *ast.FuncDecl
}

func (cs *codecState) check() {
	msgs := cs.registeredTypes()
	if len(msgs) == 0 {
		return
	}

	encDecl := cs.funcDecl("AppendEncode")
	decDecl := cs.funcDecl("Decode")
	encArms := cs.collectEncodeArms(encDecl)
	decArms := cs.collectDecodeArms(decDecl)
	nameDecl := cs.funcDecl("Name")
	var named map[*types.TypeName]bool
	if nameDecl != nil {
		named = cs.collectNameCases(nameDecl)
	}
	cs.excludeCodecMethods()
	dispatched := cs.collectDispatchSites()
	// Dispatch coverage is whole-program evidence: with a partial load
	// (scrubvet ./internal/transport) the consuming packages are absent
	// and every type would look undispatched. Only enforce when at least
	// one registered type IS dispatched somewhere in the loaded program —
	// deleting a single dispatch arm still fails, a partial load goes
	// silent instead of lying.
	anyDispatched := false
	for _, m := range msgs {
		if dispatched[typeKeyOf(m.obj.Type())] {
			anyDispatched = true
			break
		}
	}

	for _, m := range msgs {
		pos := m.obj.Pos()
		enc, hasEnc := encArms[m.obj]
		if !hasEnc {
			cs.pass.Reportf("codecsym", pos, "message %s has a msgTag but no arm in the encode switch (AppendEncode)", m.obj.Name())
		}
		if m.tagConst == nil {
			cs.pass.Reportf("codecsym", pos, "message %s: cannot resolve the tag constant its msgTag returns; codec symmetry is unchecked", m.obj.Name())
		} else {
			dec, hasDec := decArms[m.tagConst]
			if !hasDec {
				cs.pass.Reportf("codecsym", pos, "message %s has a msgTag but no arm in the decode switch (Decode, tag %s)", m.obj.Name(), m.tagConst.Name())
			} else if hasEnc {
				if msg, dpos := diffShape(enc, dec); msg != "" {
					if !dpos.IsValid() {
						dpos = pos
					}
					cs.pass.Reportf("codecsym", dpos, "codec asymmetry for %s: %s", m.obj.Name(), msg)
				}
			}
		}
		if nameDecl != nil && !named[m.obj] {
			cs.pass.Reportf("codecsym", pos, "message %s is missing from the Name switch", m.obj.Name())
		}
		if anyDispatched && !dispatched[typeKeyOf(m.obj.Type())] {
			cs.pass.Reportf("codecsym", pos, "message %s is never dispatched: no type-switch case or type assertion consumes it outside the codec", m.obj.Name())
		}
	}

	cs.checkHelperPairs()
}

// registeredTypes enumerates the package's message types in declaration
// order.
func (cs *codecState) registeredTypes() []registeredMsg {
	var out []registeredMsg
	scope := cs.u.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named := namedOf(tn.Type())
		if named == nil {
			continue
		}
		var tagFn *types.Func
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == "msgTag" {
				tagFn = named.Method(i)
				break
			}
		}
		if tagFn == nil {
			continue
		}
		m := registeredMsg{obj: tn}
		if node := cs.pass.Prog.Funcs[tagFn.FullName()]; node != nil {
			m.tagDecl = node.Decl
			m.tagConst = tagConstOf(cs.u, node.Decl)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].obj.Pos() < out[j].obj.Pos() })
	return out
}

// tagConstOf extracts the constant returned by a msgTag body of the
// canonical `return tagX` form.
func tagConstOf(u *Package, fd *ast.FuncDecl) types.Object {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return nil
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	id, ok := ast.Unparen(ret.Results[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	if c, ok := u.Info.Uses[id].(*types.Const); ok {
		return c
	}
	return nil
}

// collectEncodeArms maps each message type to its encode-arm shape,
// following the switch's default clause into same-package helper
// functions (appendEncodeCoord).
func (cs *codecState) collectEncodeArms(fd *ast.FuncDecl) map[*types.TypeName][]shapeItem {
	arms := make(map[*types.TypeName][]shapeItem)
	seen := make(map[*ast.FuncDecl]bool)
	var walk func(fd *ast.FuncDecl)
	walk = func(fd *ast.FuncDecl) {
		if fd == nil || fd.Body == nil || seen[fd] {
			return
		}
		seen[fd] = true
		cs.excluded[fd] = true
		tsw := firstTypeSwitch(fd.Body)
		if tsw == nil {
			return
		}
		for _, stmt := range tsw.Body.List {
			cc := stmt.(*ast.CaseClause)
			if cc.List == nil {
				for _, helper := range cs.samePkgCallees(cc.Body) {
					walk(helper)
				}
				continue
			}
			shape := cs.extractStmts(cc.Body)
			for _, texpr := range cc.List {
				if tn := typeNameOf(cs.u, texpr); tn != nil {
					arms[tn] = shape
				}
			}
		}
	}
	walk(fd)
	return arms
}

// collectDecodeArms maps each tag constant to its decode-arm shape,
// following the default clause into same-package helpers (decodeCoord).
func (cs *codecState) collectDecodeArms(fd *ast.FuncDecl) map[types.Object][]shapeItem {
	arms := make(map[types.Object][]shapeItem)
	seen := make(map[*ast.FuncDecl]bool)
	var walk func(fd *ast.FuncDecl)
	walk = func(fd *ast.FuncDecl) {
		if fd == nil || fd.Body == nil || seen[fd] {
			return
		}
		seen[fd] = true
		cs.excluded[fd] = true
		sw := firstTagSwitch(fd.Body)
		if sw == nil {
			return
		}
		for _, stmt := range sw.Body.List {
			cc := stmt.(*ast.CaseClause)
			if cc.List == nil {
				for _, helper := range cs.samePkgCallees(cc.Body) {
					walk(helper)
				}
				continue
			}
			shape := cs.extractStmts(cc.Body)
			for _, cexpr := range cc.List {
				if id, ok := ast.Unparen(cexpr).(*ast.Ident); ok {
					if c, ok := cs.u.Info.Uses[id].(*types.Const); ok {
						arms[c] = shape
					}
				}
			}
		}
	}
	walk(fd)
	return arms
}

// collectNameCases gathers the types the Name switch covers, following
// its default clause into helpers (nameCoord).
func (cs *codecState) collectNameCases(fd *ast.FuncDecl) map[*types.TypeName]bool {
	covered := make(map[*types.TypeName]bool)
	seen := make(map[*ast.FuncDecl]bool)
	var walk func(fd *ast.FuncDecl)
	walk = func(fd *ast.FuncDecl) {
		if fd == nil || fd.Body == nil || seen[fd] {
			return
		}
		seen[fd] = true
		cs.excluded[fd] = true
		tsw := firstTypeSwitch(fd.Body)
		if tsw == nil {
			return
		}
		for _, stmt := range tsw.Body.List {
			cc := stmt.(*ast.CaseClause)
			if cc.List == nil {
				for _, helper := range cs.samePkgCallees(cc.Body) {
					walk(helper)
				}
				continue
			}
			for _, texpr := range cc.List {
				if tn := typeNameOf(cs.u, texpr); tn != nil {
					covered[tn] = true
				}
			}
		}
	}
	walk(fd)
	return covered
}

// samePkgCallees resolves the package-level functions (not writer/reader
// methods) a statement list calls — the default-clause helper hook.
func (cs *codecState) samePkgCallees(stmts []ast.Stmt) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(cs.u, call.Fun)
			if fn == nil || fn.Pkg() != cs.u.Types {
				return true
			}
			if node := cs.pass.Prog.Funcs[fn.FullName()]; node != nil && node.Decl.Recv == nil {
				out = append(out, node.Decl)
			}
			return true
		})
	}
	return out
}

// excludeCodecMethods marks msgTag methods and all writer/reader methods
// as machinery (never dispatch evidence).
func (cs *codecState) excludeCodecMethods() {
	for _, f := range cs.u.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if fd.Name.Name == "msgTag" {
				cs.excluded[fd] = true
				continue
			}
			rt := namedOf(cs.u.TypeOf(fd.Recv.List[0].Type))
			if rt == cs.wNamed || rt == cs.rNamed {
				cs.excluded[fd] = true
			}
		}
	}
}

// collectDispatchSites scans every non-test file in the program for
// type-switch cases and type assertions that consume a message type,
// keyed by "pkgpath.TypeName" (cross-package units import the codec
// package from export data, so object identity does not hold).
func (cs *codecState) collectDispatchSites() map[string]bool {
	out := make(map[string]bool)
	mark := func(u *Package, texpr ast.Expr) {
		if texpr == nil {
			return
		}
		if key := typeKeyOf(u.TypeOf(texpr)); key != "" {
			out[key] = true
		}
	}
	for _, u := range cs.pass.Prog.Packages {
		for _, f := range u.Files {
			if strings.HasSuffix(cs.pass.Prog.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && cs.excluded[fd] {
					continue
				}
				ast.Inspect(d, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.TypeSwitchStmt:
						for _, stmt := range x.Body.List {
							for _, texpr := range stmt.(*ast.CaseClause).List {
								mark(u, texpr)
							}
						}
					case *ast.TypeAssertExpr:
						mark(u, x.Type)
					}
					return true
				})
			}
		}
	}
	return out
}

// checkHelperPairs compares writer/reader helper methods that share a
// name and are both derived (implemented purely in terms of other codec
// ops): their shapes must agree, so an asymmetry inside e.g. strs or
// windowPartials is reported once, at the writer method.
func (cs *codecState) checkHelperPairs() {
	wm := cs.methodDecls(cs.wNamed)
	rm := cs.methodDecls(cs.rNamed)
	var names []string
	for name := range wm {
		if rm[name] != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		wd, rd := wm[name], rm[name]
		wShape, wDerived := cs.helperShape(wd)
		rShape, rDerived := cs.helperShape(rd)
		if !wDerived || !rDerived {
			continue
		}
		if msg, pos := diffShape(wShape, rShape); msg != "" {
			if !pos.IsValid() {
				pos = wd.Pos()
			}
			cs.pass.Reportf("codecsym", pos, "codec asymmetry in helper pair %s: %s", canonicalOp(name), msg)
		}
	}
}

// methodDecls maps canonical method name -> declaration for a receiver
// type, excluding the reader's error plumbing.
func (cs *codecState) methodDecls(recv *types.Named) map[string]*ast.FuncDecl {
	out := make(map[string]*ast.FuncDecl)
	for _, f := range cs.u.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			if namedOf(cs.u.TypeOf(fd.Recv.List[0].Type)) != recv {
				continue
			}
			if fd.Name.Name == "fail" || fd.Name.Name == "finish" {
				continue
			}
			out[canonicalOp(fd.Name.Name)] = fd
		}
	}
	return out
}

// helperShape extracts a writer/reader method's own shape. A method is
// "derived" when it is implemented purely in terms of other codec ops:
// it contains at least one op and never touches the raw buffer/cursor
// state (any assignment to a receiver field other than err makes it a
// primitive leaf).
func (cs *codecState) helperShape(fd *ast.FuncDecl) ([]shapeItem, bool) {
	if fd == nil || fd.Body == nil {
		return nil, false
	}
	recvName := ""
	if len(fd.Recv.List[0].Names) > 0 {
		recvName = fd.Recv.List[0].Names[0].Name
	}
	primitive := false
	touchesRecvState := func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name == "err" {
			return false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		return ok && id.Name == recvName
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if touchesRecvState(lhs) {
					primitive = true
				}
			}
		case *ast.IncDecStmt:
			if touchesRecvState(x.X) {
				primitive = true
			}
		}
		return !primitive
	})
	if primitive {
		return nil, false
	}
	shape := cs.extractStmts(fd.Body.List)
	if len(shape) == 0 {
		return nil, false
	}
	// A derived helper's shape would inline itself at every call site; to
	// compare pairs structurally it is enough that the pair agree, so a
	// self-call (recursion) is left as a leaf like any other op.
	return shape, true
}

// --- shape extraction ---

// extractStmts walks a statement list in source order and returns its
// normalized codec shape: ops for writer/reader method calls, repeated
// groups for loops, the happy path through error guards.
func (cs *codecState) extractStmts(stmts []ast.Stmt) []shapeItem {
	var out []shapeItem
	for _, s := range stmts {
		out = append(out, cs.extractStmt(s)...)
	}
	return out
}

func (cs *codecState) extractStmt(s ast.Stmt) []shapeItem {
	switch x := s.(type) {
	case *ast.ExprStmt:
		return cs.extractExpr(x.X)
	case *ast.AssignStmt:
		var out []shapeItem
		for _, rhs := range x.Rhs {
			out = append(out, cs.extractExpr(rhs)...)
		}
		return out
	case *ast.DeclStmt:
		var out []shapeItem
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						out = append(out, cs.extractExpr(v)...)
					}
				}
			}
		}
		return out
	case *ast.ReturnStmt:
		var out []shapeItem
		for _, r := range x.Results {
			out = append(out, cs.extractExpr(r)...)
		}
		return out
	case *ast.IfStmt:
		var out []shapeItem
		if x.Init != nil {
			out = append(out, cs.extractStmt(x.Init)...)
		}
		out = append(out, cs.extractExpr(x.Cond)...)
		then := cs.extractStmts(x.Body.List)
		var els []shapeItem
		if x.Else != nil {
			els = cs.extractStmt(x.Else)
		}
		// Branches: identical shapes collapse (w.bool's two u8 writes);
		// an empty branch is an error guard — take the other (happy)
		// path; genuinely divergent branches take the then-path.
		switch {
		case equalShape(then, els):
			out = append(out, then...)
		case len(then) == 0:
			out = append(out, els...)
		default:
			out = append(out, then...)
		}
		return out
	case *ast.BlockStmt:
		return cs.extractStmts(x.List)
	case *ast.ForStmt:
		var out []shapeItem
		if x.Init != nil {
			out = append(out, cs.extractStmt(x.Init)...)
		}
		body := cs.extractStmts(x.Body.List)
		if len(body) > 0 {
			out = append(out, shapeItem{pos: x.For, rep: body})
		}
		return out
	case *ast.RangeStmt:
		var out []shapeItem
		out = append(out, cs.extractExpr(x.X)...)
		body := cs.extractStmts(x.Body.List)
		if len(body) > 0 {
			out = append(out, shapeItem{pos: x.For, rep: body})
		}
		return out
	case *ast.SwitchStmt:
		// Rare inside an arm: collapse identical cases, else first
		// non-empty.
		var first []shapeItem
		for _, stmt := range x.Body.List {
			shape := cs.extractStmts(stmt.(*ast.CaseClause).Body)
			if len(shape) > 0 && len(first) == 0 {
				first = shape
			}
		}
		return first
	case *ast.LabeledStmt:
		return cs.extractStmt(x.Stmt)
	}
	return nil
}

// extractExpr collects codec ops from an expression in evaluation order
// (arguments before the call that consumes them, composite-literal
// elements in source order).
func (cs *codecState) extractExpr(e ast.Expr) []shapeItem {
	var out []shapeItem
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case nil:
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				walk(sel.X)
			} else {
				walk(x.Fun)
			}
			for _, a := range x.Args {
				walk(a)
			}
			if op, ok := cs.opOf(x); ok {
				out = append(out, shapeItem{op: op, pos: x.Pos()})
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				walk(elt)
			}
		case *ast.KeyValueExpr:
			walk(x.Value)
		case *ast.ParenExpr:
			walk(x.X)
		case *ast.UnaryExpr:
			walk(x.X)
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.StarExpr:
			walk(x.X)
		case *ast.SelectorExpr:
			walk(x.X)
		case *ast.IndexExpr:
			walk(x.X)
			walk(x.Index)
		case *ast.SliceExpr:
			walk(x.X)
			walk(x.Low)
			walk(x.High)
			walk(x.Max)
		case *ast.TypeAssertExpr:
			walk(x.X)
		}
	}
	walk(e)
	return out
}

// opOf reports whether a call is a codec op: a method call on the
// package's writer or reader type, minus the error plumbing.
func (cs *codecState) opOf(call *ast.CallExpr) (string, bool) {
	fn := funcFor(cs.u, call.Fun)
	if fn == nil || fn.Pkg() != cs.u.Types {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := namedOf(sig.Recv().Type())
	if recv != cs.wNamed && recv != cs.rNamed {
		return "", false
	}
	name := fn.Name()
	if name == "fail" || name == "finish" {
		return "", false
	}
	return canonicalOp(name), true
}

// canonicalOp folds naming drift between the sides (the writer's bool
// pairs with the reader's boolv).
func canonicalOp(name string) string {
	if name == "boolv" {
		return "bool"
	}
	return name
}

func equalShape(a, b []shapeItem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].op != b[i].op {
			return false
		}
		if (a[i].rep != nil) != (b[i].rep != nil) {
			return false
		}
		if a[i].rep != nil && !equalShape(a[i].rep, b[i].rep) {
			return false
		}
	}
	return true
}

// diffShape reports the first divergence between an encode shape and the
// matching decode shape, with the position of the offending element.
func diffShape(enc, dec []shapeItem) (string, token.Pos) {
	for i := 0; i < len(enc) || i < len(dec); i++ {
		if i >= len(enc) {
			d := dec[i]
			return fmt.Sprintf("decode reads %s (element %d) that encode never writes", describeItem(d), i+1), d.pos
		}
		if i >= len(dec) {
			e := enc[i]
			return fmt.Sprintf("encode writes %s (element %d) that decode never reads", describeItem(e), i+1), e.pos
		}
		e, d := enc[i], dec[i]
		switch {
		case e.rep != nil && d.rep != nil:
			if msg, pos := diffShape(e.rep, d.rep); msg != "" {
				return "inside repeated group: " + msg, pos
			}
		case e.rep != nil:
			return fmt.Sprintf("element %d: encode writes a repeated group but decode reads %s", i+1, d.op), d.pos
		case d.rep != nil:
			return fmt.Sprintf("element %d: encode writes %s but decode reads a repeated group", i+1, e.op), e.pos
		case e.op != d.op:
			return fmt.Sprintf("element %d: encode writes %s but decode reads %s", i+1, e.op, d.op), d.pos
		}
	}
	return "", token.NoPos
}

// typeNameOf resolves a type-switch case expression to the *types.TypeName
// it names (unwrapping pointers), or nil.
func typeNameOf(u *Package, texpr ast.Expr) *types.TypeName {
	n := namedOf(u.TypeOf(texpr))
	if n == nil {
		return nil
	}
	return n.Obj()
}

// firstTypeSwitch finds the outermost type switch in a body.
func firstTypeSwitch(body *ast.BlockStmt) *ast.TypeSwitchStmt {
	var found *ast.TypeSwitchStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if tsw, ok := n.(*ast.TypeSwitchStmt); ok {
			found = tsw
			return false
		}
		return true
	})
	return found
}

// firstTagSwitch finds the outermost value switch (the tag dispatch) in
// a body.
func firstTagSwitch(body *ast.BlockStmt) *ast.SwitchStmt {
	var found *ast.SwitchStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if sw, ok := n.(*ast.SwitchStmt); ok && sw.Tag != nil {
			found = sw
			return false
		}
		return true
	})
	return found
}
