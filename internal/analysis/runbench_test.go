package analysis

import "testing"

// loadRepo type-checks the whole module once for the Run benchmarks;
// the load itself (go list -export + type-check) is the fixed cost both
// execution modes share.
func loadRepo(b *testing.B) *Program {
	b.Helper()
	prog, err := Load(LoadConfig{Dir: "../..", Tests: true})
	if err != nil {
		b.Skipf("load: %v", err)
	}
	return prog
}

func BenchmarkRunParallel(b *testing.B) {
	prog := loadRepo(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(prog, All())
	}
}

func BenchmarkRunSequential(b *testing.B) {
	prog := loadRepo(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunSequential(prog, All())
	}
}
