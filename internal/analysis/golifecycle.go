package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLifecycleAnalyzer checks that goroutines spawned in long-lived
// components cannot be stranded: shard or coordinator churn must not
// leak service loops. Packages opt in with //scrub:longlived in their
// package doc (server, coord, host, replay in this tree). Every `go`
// statement in their non-test files must show one of:
//
//   - a sync.WaitGroup.Done in the spawned body (tracked shutdown);
//   - a channel stop path: a receive (<-ch, select with a receive case,
//     range over a channel), through which a close/ctx-done can end it;
//   - an event loop: an unconditional `for` whose body can exit via
//     return or break — the connection-serve shape, which ends when its
//     runtime source (conn, queue) is closed;
//   - a //scrub:oneshot(reason) annotation on or above the go statement
//     for goroutines bounded by construction.
//
// An unconditional `for` with no reachable exit is flagged regardless
// of other evidence, and a go statement whose target cannot be
// statically resolved (a func value) is flagged so the hatch makes the
// reasoning explicit.
var GoLifecycleAnalyzer = &Analyzer{
	Name: "golifecycle",
	Doc:  "go statements in //scrub:longlived packages need a reachable stop path",
	Run:  runGoLifecycle,
}

func runGoLifecycle(pass *Pass) {
	for _, u := range pass.Prog.Packages {
		if !pass.Prog.Ann.LongLivedPkgs[u.Path] {
			continue
		}
		for _, f := range u.Files {
			if strings.HasSuffix(pass.Prog.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkGoStmt(pass, u, g)
				}
				return true
			})
		}
	}
}

func checkGoStmt(pass *Pass, u *Package, g *ast.GoStmt) {
	bodyPkg, body := resolveSpawnBody(pass, u, g.Call)
	if body == nil {
		pass.Reportf("golifecycle", g.Pos(),
			"cannot statically resolve the function this goroutine runs; give it an explicit stop path or annotate //scrub:oneshot(reason)")
		return
	}
	ev := scanLifecycle(bodyPkg, body)
	if ev.badLoop.IsValid() {
		pass.Reportf("golifecycle", g.Pos(),
			"goroutine loops forever with no stop path (loop at %s): no return, break, or terminating condition ever exits it",
			pass.Prog.Fset.Position(ev.badLoop))
		return
	}
	if ev.wgDone || ev.receive || ev.eventLoop {
		return
	}
	pass.Reportf("golifecycle", g.Pos(),
		"goroutine has no tracked lifecycle: no WaitGroup.Done, no channel stop path; annotate //scrub:oneshot(reason) if it is bounded by construction")
}

// resolveSpawnBody finds the block a go statement runs: a function
// literal's body, or the declaration of a statically-named function,
// following single-call wrappers a few levels deep.
func resolveSpawnBody(pass *Pass, u *Package, call *ast.CallExpr) (*Package, *ast.BlockStmt) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return u, lit.Body
	}
	pkg, body := u, (*ast.BlockStmt)(nil)
	cur := call
	for depth := 0; depth < 3; depth++ {
		fn := funcFor(pkg, cur.Fun)
		if fn == nil {
			return nil, nil
		}
		node := pass.Prog.Funcs[fn.FullName()]
		if node == nil {
			return nil, nil
		}
		pkg, body = node.Pkg, node.Decl.Body
		// Thin wrapper: a body that only forwards to another call.
		if body != nil && len(body.List) == 1 {
			if es, ok := body.List[0].(*ast.ExprStmt); ok {
				if inner, ok := es.X.(*ast.CallExpr); ok {
					cur = inner
					continue
				}
			}
		}
		break
	}
	return pkg, body
}

// lifeEvidence is what the body scan finds.
type lifeEvidence struct {
	wgDone    bool      // sync.WaitGroup.Done reachable in the body
	receive   bool      // any channel receive (<-ch, select, range ch)
	eventLoop bool      // unconditional for with an exit path
	badLoop   token.Pos // unconditional for with NO exit path
}

// scanLifecycle walks a spawned body, skipping nested go statements
// (each is checked at its own site) but descending into function
// literals (deferred cleanups run on this goroutine).
func scanLifecycle(u *Package, body *ast.BlockStmt) lifeEvidence {
	var ev lifeEvidence
	skip := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || skip[n] {
			return !skip[n]
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			skip[x.Call] = true
		case *ast.CallExpr:
			if isWaitGroupDone(u, x) {
				ev.wgDone = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ev.receive = true
			}
		case *ast.RangeStmt:
			if t := u.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					ev.receive = true
				}
			}
		case *ast.ForStmt:
			if x.Cond == nil {
				if loopHasExit(x) {
					ev.eventLoop = true
				} else if !ev.badLoop.IsValid() {
					ev.badLoop = x.For
				}
			}
		}
		return true
	})
	return ev
}

func isWaitGroupDone(u *Package, call *ast.CallExpr) bool {
	fn := funcFor(u, call.Fun)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Done" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && named.Obj().Name() == "WaitGroup"
}

// loopHasExit reports whether an unconditional for loop contains a
// statement that leaves it: a return, a goto, or a break bound to this
// loop (not to a nested loop, switch, or select).
func loopHasExit(loop *ast.ForStmt) bool {
	exit := false
	// breakDepth counts enclosing break-consuming statements inside the
	// loop; an unlabeled break exits our loop only at depth zero.
	var walk func(n ast.Stmt, breakDepth int)
	walkBody := func(list []ast.Stmt, depth int) {
		for _, s := range list {
			walk(s, depth)
		}
	}
	walk = func(n ast.Stmt, breakDepth int) {
		if exit || n == nil {
			return
		}
		switch x := n.(type) {
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			switch x.Tok {
			case token.GOTO:
				exit = true
			case token.BREAK:
				if breakDepth == 0 || x.Label != nil {
					exit = true
				}
			}
		case *ast.BlockStmt:
			walkBody(x.List, breakDepth)
		case *ast.IfStmt:
			walk(x.Body, breakDepth)
			walk(x.Else, breakDepth)
		case *ast.ForStmt:
			walk(x.Body, breakDepth+1)
		case *ast.RangeStmt:
			walk(x.Body, breakDepth+1)
		case *ast.SwitchStmt:
			walkBody(x.Body.List, breakDepth+1)
		case *ast.TypeSwitchStmt:
			walkBody(x.Body.List, breakDepth+1)
		case *ast.SelectStmt:
			walkBody(x.Body.List, breakDepth+1)
		case *ast.CaseClause:
			walkBody(x.Body, breakDepth)
		case *ast.CommClause:
			walkBody(x.Body, breakDepth)
		case *ast.LabeledStmt:
			walk(x.Stmt, breakDepth)
		}
	}
	walkBody(loop.Body.List, 0)
	return exit
}
