package cluster

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"scrub/internal/ql"
)

func demoRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	add := func(name, service, dc string) {
		t.Helper()
		if err := r.Register(HostInfo{Name: name, Service: service, DC: dc}); err != nil {
			t.Fatal(err)
		}
	}
	add("bid-sj-1", "BidServers", "DC1")
	add("bid-sj-2", "BidServers", "DC1")
	add("bid-ny-1", "BidServers", "DC2")
	add("ad-sj-1", "AdServers", "DC1")
	add("pres-sj-1", "PresentationServers", "DC1")
	add("pres-ny-1", "PresentationServers", "DC2")
	return r
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(HostInfo{Service: "X"}); err == nil {
		t.Error("empty name should fail")
	}
	if err := r.Register(HostInfo{Name: "h"}); err == nil {
		t.Error("empty service should fail")
	}
}

func TestLookupAndDeregister(t *testing.T) {
	r := demoRegistry(t)
	if h, ok := r.Lookup("ad-sj-1"); !ok || h.Service != "AdServers" {
		t.Errorf("Lookup = %+v, %v", h, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("unknown lookup should miss")
	}
	r.Deregister("ad-sj-1")
	if _, ok := r.Lookup("ad-sj-1"); ok {
		t.Error("deregistered host still present")
	}
	r.Deregister("nope") // no-op
	if r.Len() != 5 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRegisterUpdatesInPlace(t *testing.T) {
	r := demoRegistry(t)
	if err := r.Register(HostInfo{Name: "bid-sj-1", Service: "BidServers", DC: "DC3"}); err != nil {
		t.Fatal(err)
	}
	if h, _ := r.Lookup("bid-sj-1"); h.DC != "DC3" {
		t.Error("re-register did not update")
	}
	if r.Len() != 6 {
		t.Errorf("Len = %d after update", r.Len())
	}
}

func TestAllAndServices(t *testing.T) {
	r := demoRegistry(t)
	all := r.All()
	if len(all) != 6 {
		t.Fatalf("All = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Name <= all[i-1].Name {
			t.Error("All not sorted")
		}
	}
	if got := r.Services(); !reflect.DeepEqual(got, []string{"AdServers", "BidServers", "PresentationServers"}) {
		t.Errorf("Services = %v", got)
	}
}

func TestResolve(t *testing.T) {
	r := demoRegistry(t)
	cases := []struct {
		spec ql.TargetSpec
		want []string
	}{
		{ql.TargetSpec{All: true}, []string{"ad-sj-1", "bid-ny-1", "bid-sj-1", "bid-sj-2", "pres-ny-1", "pres-sj-1"}},
		{ql.TargetSpec{}, []string{"ad-sj-1", "bid-ny-1", "bid-sj-1", "bid-sj-2", "pres-ny-1", "pres-sj-1"}},
		{ql.TargetSpec{Services: []string{"BidServers"}}, []string{"bid-ny-1", "bid-sj-1", "bid-sj-2"}},
		{ql.TargetSpec{Services: []string{"BidServers"}, DC: "DC1"}, []string{"bid-sj-1", "bid-sj-2"}},
		{ql.TargetSpec{Services: []string{"BidServers"}, Servers: []string{"bid-sj-2"}}, []string{"bid-sj-2"}},
		{ql.TargetSpec{Servers: []string{"pres-ny-1", "ad-sj-1"}}, []string{"ad-sj-1", "pres-ny-1"}},
		{ql.TargetSpec{Services: []string{"AdServers", "PresentationServers"}, DC: "DC2"}, []string{"pres-ny-1"}},
		{ql.TargetSpec{DC: "DC9"}, nil},
		{ql.TargetSpec{Services: []string{"Ghost"}}, nil},
		{ql.TargetSpec{Services: []string{"BidServers"}, Servers: []string{"ad-sj-1"}}, nil},
	}
	for _, c := range cases {
		got := Names(r.Resolve(c.spec))
		if !reflect.DeepEqual(got, c.want) && !(len(got) == 0 && len(c.want) == 0) {
			t.Errorf("Resolve(%s) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestResolveMatchesQuerySyntax(t *testing.T) {
	// End-to-end: the paper's target expression resolves as expected.
	r := demoRegistry(t)
	q, err := ql.Parse(`select count(*) from bid @[Service in BidServers and Server = "bid-sj-1"]`)
	if err != nil {
		t.Fatal(err)
	}
	got := Names(r.Resolve(q.Target))
	if !reflect.DeepEqual(got, []string{"bid-sj-1"}) {
		t.Errorf("resolved = %v", got)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("h-%d-%d", w, i)
				_ = r.Register(HostInfo{Name: name, Service: "S", DC: "DC1"})
				r.Lookup(name)
				r.Resolve(ql.TargetSpec{Services: []string{"S"}})
				if i%3 == 0 {
					r.Deregister(name)
				}
			}
		}(w)
	}
	wg.Wait()
}
