// Package cluster models the deployment Scrub queries target: hosts
// grouped into services (BidServers, AdServers, PresentationServers, ...)
// and data centers. The query language's `@[...]` construct resolves
// against this registry, which is how Scrub limits query execution to the
// specified hosts instead of filtering on a host-name column — the query
// never even reaches uninvolved machines (paper §3.2).
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"scrub/internal/ql"
)

// HostInfo describes one application host running a Scrub agent.
type HostInfo struct {
	Name    string // unique host name, e.g. "bid-sj-007"
	Service string // logical service, e.g. "BidServers"
	DC      string // data center, e.g. "DC1"
	Addr    string // agent control address (host:port), empty in-process
}

// Registry is a thread-safe host directory. In production this would be
// fed from a coordination service (the paper's deployment uses
// ZooKeeper-backed membership); here hosts register themselves when their
// agent starts.
type Registry struct {
	mu    sync.RWMutex
	hosts map[string]HostInfo
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{hosts: make(map[string]HostInfo)}
}

// Register adds or updates a host. Name and Service must be non-empty.
func (r *Registry) Register(h HostInfo) error {
	if h.Name == "" {
		return fmt.Errorf("cluster: empty host name")
	}
	if h.Service == "" {
		return fmt.Errorf("cluster: host %q has empty service", h.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hosts[h.Name] = h
	return nil
}

// Deregister removes a host; unknown names are a no-op.
func (r *Registry) Deregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.hosts, name)
}

// Lookup returns a host by name.
func (r *Registry) Lookup(name string) (HostInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.hosts[name]
	return h, ok
}

// Len returns the number of registered hosts.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.hosts)
}

// All returns every host, sorted by name.
func (r *Registry) All() []HostInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]HostInfo, 0, len(r.hosts))
	for _, h := range r.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Services returns the distinct service names, sorted.
func (r *Registry) Services() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[string]bool)
	for _, h := range r.hosts {
		seen[h.Service] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Resolve returns the hosts matching a target spec, sorted by name.
// Criteria are conjunctive across clause kinds (Service AND Server AND
// DC), disjunctive within a list, matching the query language semantics.
// An empty spec (or All) matches every host. Unknown names simply match
// nothing; the query server reports empty target sets to the user.
func (r *Registry) Resolve(t ql.TargetSpec) []HostInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()

	services := toSet(t.Services)
	servers := toSet(t.Servers)

	var out []HostInfo
	for _, h := range r.hosts {
		if len(services) > 0 && !services[h.Service] {
			continue
		}
		if len(servers) > 0 && !servers[h.Name] {
			continue
		}
		if t.DC != "" && h.DC != t.DC {
			continue
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names extracts the host names from a HostInfo slice.
func Names(hosts []HostInfo) []string {
	out := make([]string, len(hosts))
	for i, h := range hosts {
		out[i] = h.Name
	}
	return out
}

func toSet(xs []string) map[string]bool {
	if len(xs) == 0 {
		return nil
	}
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
