// Command failoversmoke is the CI gate for coordinator high availability:
// it boots a real distributed deployment on loopback — two shard
// processes, a warm standby, a replicating coordinator, two host agents
// generating demo events, and a troubleshooter running a live query —
// then kill -9s the coordinator mid-query and fails unless the standby
// promotes, adopts the query, and keeps closing result windows.
//
// All children are built with -race so the takeover path runs under the
// detector in CI. Run it from the repo root (make failover-smoke does):
//
//	go run ./scripts/failoversmoke
package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "failover-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("failover-smoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "failoversmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	for _, cmd := range []string{"scrubcentral", "scrubd", "scrubql"} {
		build := exec.Command("go", "build", "-race", "-o", filepath.Join(tmp, cmd), "./cmd/"+cmd)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build %s: %w", cmd, err)
		}
	}
	central := filepath.Join(tmp, "scrubcentral")

	// The standby takes over the leader's addresses after the kill, so
	// they must be fixed up front (ephemeral :0 would differ per process).
	clientAddr, err := pickPort()
	if err != nil {
		return err
	}
	controlAddr, err := pickPort()
	if err != nil {
		return err
	}
	dataAddr, err := pickPort()
	if err != nil {
		return err
	}

	// Two shard processes: they outlive the leader and hold the windows.
	var shardAddrs []string
	for i := 0; i < 2; i++ {
		shard := newDaemon(central, "-adplatform", "-shard", "127.0.0.1:0")
		if err := shard.start(); err != nil {
			return err
		}
		defer shard.stop()
		addr, err := shard.await("  shard rpc: ")
		if err != nil {
			return err
		}
		shardAddrs = append(shardAddrs, addr)
	}

	// The warm standby: shadows the replicated log, and on leader silence
	// rebinds the leader's client/control/data addresses.
	standby := newDaemon(central, "-adplatform",
		"-standby", "127.0.0.1:0", "-failover-timeout", "750ms",
		"-client", clientAddr, "-control", controlAddr, "-data", dataAddr)
	if err := standby.start(); err != nil {
		return err
	}
	defer standby.stop()
	repAddr, err := standby.await("  replication: ")
	if err != nil {
		return err
	}

	// The leader: replicating coordinator over both shards.
	leader := newDaemon(central, "-adplatform", "-coord",
		"-client", clientAddr, "-control", controlAddr, "-data", dataAddr,
		"-shard-addrs", strings.Join(shardAddrs, ","),
		"-peers", repAddr)
	if err := leader.start(); err != nil {
		return err
	}
	defer leader.stop()
	if _, err := leader.await("scrubcentral up"); err != nil {
		return err
	}

	// Two host agents generating demo bid events.
	for i := 0; i < 2; i++ {
		agent := newDaemon(filepath.Join(tmp, "scrubd"),
			"-host", fmt.Sprintf("fo-%d", i+1), "-service", "BidServers", "-adplatform",
			"-control", controlAddr, "-data", dataAddr,
			"-demo", "bid=300", "-seed", fmt.Sprintf("%d", i+1))
		if err := agent.start(); err != nil {
			return err
		}
		defer agent.stop()
		if _, err := agent.await("scrubd up:"); err != nil {
			return err
		}
	}

	// The troubleshooter: a live query spanning well past the kill. Its
	// client connection dies with the leader; the promoted standby owns
	// the query afterwards and prints its windows itself.
	query := newDaemon(filepath.Join(tmp, "scrubql"),
		"-server", clientAddr, "-quiet",
		"select count(*) from bid window 2s duration 2m")
	if err := query.start(); err != nil {
		return err
	}
	defer query.stop()

	// Windows must flow on the leader before the kill is meaningful.
	if err := awaitWindows(filepath.Join(tmp, "scrubql"), clientAddr, 20*time.Second); err != nil {
		return fmt.Errorf("pre-kill: %w", err)
	}
	fmt.Println("failover-smoke: query running on leader, windows closing — killing leader")

	// kill -9: no shutdown path runs; the standby must notice via silence.
	if err := leader.cmd.Process.Kill(); err != nil {
		return err
	}
	_, _ = leader.cmd.Process.Wait()

	if _, err := standby.await("scrubcentral standby: leader silent"); err != nil {
		return err
	}
	promoted, err := standby.await("scrubcentral up (promoted leader, fence ")
	if err != nil {
		return err
	}
	fmt.Printf("failover-smoke: standby promoted (fence %s\n", promoted)

	// The adopted query must keep closing windows on the new leader —
	// several of them, proving the merge resumed, not just survived.
	for n := 0; n < 3; n++ {
		if _, err := standby.await("scrubcentral adopted window: query 1 "); err != nil {
			return fmt.Errorf("post-failover window %d: %w", n+1, err)
		}
	}

	// And the query is visible (and accumulating) through the re-bound
	// client plane, so a reconnecting troubleshooter can find it.
	if err := awaitWindows(filepath.Join(tmp, "scrubql"), clientAddr, 20*time.Second); err != nil {
		return fmt.Errorf("post-failover list: %w", err)
	}
	fmt.Println("failover-smoke: promoted leader closing windows for the adopted query")
	return nil
}

// awaitWindows polls `scrubql -list` until query 1 reports at least one
// closed window.
func awaitWindows(scrubql, clientAddr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		out, err := exec.Command(scrubql, "-server", clientAddr, "-list").CombinedOutput()
		if err == nil {
			for _, line := range strings.Split(string(out), "\n") {
				if strings.HasPrefix(line, "query 1 ") && !strings.Contains(line, "windows=0 ") {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("query 1 closed no windows within %s (last list: %q, err %v)", timeout, string(out), err)
		}
		time.Sleep(300 * time.Millisecond)
	}
}

// pickPort reserves a loopback port by binding and releasing it.
func pickPort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// daemon wraps a child process whose stdout is scanned for marker lines.
type daemon struct {
	cmd   *exec.Cmd
	lines chan string
}

func newDaemon(bin string, args ...string) *daemon {
	return &daemon{cmd: exec.Command(bin, args...), lines: make(chan string, 256)}
}

func (d *daemon) start() error {
	out, err := d.cmd.StdoutPipe()
	if err != nil {
		return err
	}
	d.cmd.Stderr = os.Stderr
	if err := d.cmd.Start(); err != nil {
		return err
	}
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			select {
			case d.lines <- sc.Text():
			default: // never block the child on our buffer
			}
		}
		close(d.lines)
	}()
	return nil
}

// await returns the remainder of the first stdout line starting with
// prefix, waiting up to 30s (promotion waits out the failover timeout,
// and -race children are slow).
func (d *daemon) await(prefix string) (string, error) {
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-d.lines:
			if !ok {
				return "", fmt.Errorf("%s exited before printing %q", d.cmd.Path, prefix)
			}
			if strings.HasPrefix(line, prefix) {
				return strings.TrimSpace(strings.TrimPrefix(line, prefix)), nil
			}
		case <-deadline:
			return "", fmt.Errorf("timed out waiting for %q from %s", prefix, d.cmd.Path)
		}
	}
}

func (d *daemon) stop() {
	if d.cmd.Process != nil {
		_ = d.cmd.Process.Kill()
		_, _ = d.cmd.Process.Wait()
	}
}
