#!/usr/bin/env bash
# Full verification pass: vet, build, and the complete test suite under
# the race detector. Tier-1 (ROADMAP.md) is the subset
# `go build ./... && go test ./...`; this script is the stricter gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== analyzer golden tests (internal/analysis) =="
go test ./internal/analysis/...

echo "== scrubvet (hotpath, poolsafe, atomicfield, metricname, codecsym, lockorder, golifecycle) =="
# On failure, re-run in -json mode so CI logs carry machine-readable
# findings (one object per line: file/line/analyzer/message).
if ! go run ./cmd/scrubvet ./...; then
  echo "scrubvet findings (JSON):" >&2
  go run ./cmd/scrubvet -json ./... >&2 || true
  exit 1
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== metrics smoke (boot daemons, scrape /metrics) =="
go run ./scripts/metricssmoke

echo "== chaos soak (fixed seed, quick, -race) =="
go run -race ./cmd/benchrunner -only C1 -quick -p1json ''

echo "== bench smoke (tiny PS sweep, BENCH_P2 emission) =="
make bench-smoke

echo "== differential oracle sweep (200 seeded sims, -race) =="
go test -race ./internal/difftest -run 'TestDifferentialSweep|TestRegressionSeeds' -difftest.seeds=200

echo "== multinode smoke (coordinator + 2 shards + 3 hosts, -race) =="
go test -race -run TestMultinodeSmoke ./internal/server

echo "== failover smoke (kill -9 leader mid-query, standby promotes, -race) =="
go run ./scripts/failoversmoke

echo "== replay smoke (record/replay equivalence, hold release) =="
go test -race -run 'TestReplay' ./internal/difftest ./internal/host ./internal/central ./internal/replay

echo "== fuzz smoke (transport frame decoding, ql parser, replay chunks) =="
go test ./internal/transport -run='^$' -fuzz=FuzzDecode -fuzztime=3s
go test ./internal/transport -run='^$' -fuzz=FuzzRecvFrame -fuzztime=3s
go test ./internal/ql -run='^$' -fuzz=FuzzParse -fuzztime=3s
go test ./internal/replay -run='^$' -fuzz=FuzzDecodeChunk -fuzztime=3s

echo "ci: OK"
