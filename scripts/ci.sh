#!/usr/bin/env bash
# Full verification pass: vet, build, and the complete test suite under
# the race detector. Tier-1 (ROADMAP.md) is the subset
# `go build ./... && go test ./...`; this script is the stricter gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "ci: OK"
