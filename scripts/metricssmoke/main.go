// Command metricssmoke is the CI gate for the observability surface: it
// builds scrubcentral and scrubd, boots them against each other on
// ephemeral ports with -metrics enabled, scrapes both /metrics endpoints,
// and fails if a required series family is missing, any series is
// duplicated, the exposition is malformed, or /debug/pprof is absent.
//
// Run it from the repo root (make metrics-smoke does):
//
//	go run ./scripts/metricssmoke
package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// required lists the metric families each daemon must expose at boot
// (histograms appear as their _count series). Everything here is
// registered at construction time, so a fresh daemon with no queries
// still exposes all of it at value zero.
var requiredCentral = []string{
	"scrub_central_batches_total",
	"scrub_central_tuples_total",
	"scrub_central_windows_total",
	"scrub_central_degraded_windows_total",
	"scrub_central_shed_windows_total",
	"scrub_central_window_close_ns_count",
	"scrub_central_watermark_lag_ns",
	"scrub_central_join_pending",
	"scrub_transport_frames_recv_total",
}

var requiredHost = []string{
	"scrub_host_logged_total",
	"scrub_host_matched_total",
	"scrub_host_shipped_total",
	"scrub_host_queue_drops_total",
	"scrub_host_sink_errors_total",
	"scrub_host_chunk_fills_total",
	"scrub_host_ship_bytes_total",
	"scrub_host_governor_downsamples_total",
	"scrub_host_governor_recovers_total",
	"scrub_host_governor_sheds_total",
	"scrub_host_log_ns_count",
	"scrub_host_spill_depth",
	"scrub_host_spill_drops_total",
	"scrub_host_data_reconnects_total",
	"scrub_host_control_reconnects_total",
	"scrub_transport_frames_sent_total",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "metrics-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("metrics-smoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "metricssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	for _, cmd := range []string{"scrubcentral", "scrubd"} {
		build := exec.Command("go", "build", "-o", filepath.Join(tmp, cmd), "./cmd/"+cmd)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build %s: %w", cmd, err)
		}
	}

	central := newDaemon(filepath.Join(tmp, "scrubcentral"),
		"-adplatform",
		"-client", "127.0.0.1:0", "-control", "127.0.0.1:0", "-data", "127.0.0.1:0",
		"-metrics", "127.0.0.1:0")
	if err := central.start(); err != nil {
		return err
	}
	defer central.stop()
	centralMetrics, err := central.await("scrubcentral metrics: ")
	if err != nil {
		return err
	}
	controlAddr, err := central.await("  control: ")
	if err != nil {
		return err
	}
	dataAddr, err := central.await("  data:    ")
	if err != nil {
		return err
	}

	scrubd := newDaemon(filepath.Join(tmp, "scrubd"),
		"-host", "smoke-1", "-service", "BidServers", "-adplatform",
		"-control", controlAddr, "-data", dataAddr,
		"-demo", "bid=200",
		"-metrics", "127.0.0.1:0")
	if err := scrubd.start(); err != nil {
		return err
	}
	defer scrubd.stop()
	hostMetrics, err := scrubd.await("scrubd metrics: ")
	if err != nil {
		return err
	}
	if _, err := scrubd.await("scrubd up:"); err != nil {
		return err
	}

	// Let the agent connect and ship a heartbeat or two.
	time.Sleep(300 * time.Millisecond)

	if err := checkMetrics("scrubcentral", centralMetrics, requiredCentral); err != nil {
		return err
	}
	if err := checkMetrics("scrubd", hostMetrics, requiredHost); err != nil {
		return err
	}
	for _, u := range []string{centralMetrics, hostMetrics} {
		if err := checkPprof(u); err != nil {
			return err
		}
	}
	return nil
}

// daemon wraps a child process whose stdout is scanned for marker lines.
type daemon struct {
	cmd   *exec.Cmd
	lines chan string
}

func newDaemon(bin string, args ...string) *daemon {
	return &daemon{cmd: exec.Command(bin, args...), lines: make(chan string, 64)}
}

func (d *daemon) start() error {
	out, err := d.cmd.StdoutPipe()
	if err != nil {
		return err
	}
	d.cmd.Stderr = os.Stderr
	if err := d.cmd.Start(); err != nil {
		return err
	}
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			select {
			case d.lines <- sc.Text():
			default: // never block the child on our buffer
			}
		}
		close(d.lines)
	}()
	return nil
}

// await returns the remainder of the first stdout line starting with
// prefix, waiting up to 10s.
func (d *daemon) await(prefix string) (string, error) {
	deadline := time.After(10 * time.Second)
	for {
		select {
		case line, ok := <-d.lines:
			if !ok {
				return "", fmt.Errorf("%s exited before printing %q", d.cmd.Path, prefix)
			}
			if strings.HasPrefix(line, prefix) {
				return strings.TrimSpace(strings.TrimPrefix(line, prefix)), nil
			}
		case <-deadline:
			return "", fmt.Errorf("timed out waiting for %q from %s", prefix, d.cmd.Path)
		}
	}
}

func (d *daemon) stop() {
	if d.cmd.Process != nil {
		_ = d.cmd.Process.Kill()
		_, _ = d.cmd.Process.Wait()
	}
}

// checkMetrics scrapes url and validates the exposition: every required
// family present, no duplicate series, every sample line well-formed.
func checkMetrics(who, url string, required []string) error {
	body, err := get(url)
	if err != nil {
		return fmt.Errorf("%s: scrape %s: %w", who, url, err)
	}
	series := make(map[string]bool) // full series key: name{labels}
	families := make(map[string]bool)
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("%s: malformed exposition line %q", who, line)
		}
		key := line[:sp]
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if name == "" {
			return fmt.Errorf("%s: malformed exposition line %q", who, line)
		}
		if series[key] {
			return fmt.Errorf("%s: duplicate series %q", who, key)
		}
		series[key] = true
		families[name] = true
	}
	var missing []string
	for _, name := range required {
		if !families[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: missing metric families %v (got %d series)", who, missing, len(series))
	}
	fmt.Printf("metrics-smoke: %s exposes %d series, all %d required families present\n",
		who, len(series), len(required))
	return nil
}

// checkPprof verifies the pprof index responds next to /metrics.
func checkPprof(metricsURL string) error {
	u := strings.TrimSuffix(metricsURL, "/metrics") + "/debug/pprof/cmdline"
	if _, err := get(u); err != nil {
		return fmt.Errorf("pprof endpoint %s: %w", u, err)
	}
	return nil
}

func get(url string) (string, error) {
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %s", resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
