// Package scrub's root benchmark suite: one testing.B entry point per
// paper table/figure (see DESIGN.md §5 for the experiment index). Each
// benchmark drives the corresponding experiment in
// internal/experiments at a bench-sized configuration and reports the
// experiment's headline metric via b.ReportMetric, so `go test -bench=.`
// regenerates every result. cmd/benchrunner prints the full paper-style
// tables at full scale.
package scrub

import (
	"testing"
	"time"

	"scrub/internal/experiments"
	"scrub/internal/workload"
)

// BenchmarkE1SpamDetection — §8.1, Figs. 9–10.
func BenchmarkE1SpamDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E1SpamDetection(experiments.E1Config{
			Users: 400, Duration: 90 * time.Second,
			Bots: []workload.BotSpec{
				{UserID: 900001, BatchSize: 300, Period: 15 * time.Second},
				{UserID: 900002, BatchSize: 200, Period: 20 * time.Second, StartAt: 10 * time.Second},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Detected) != 2 {
			b.Fatalf("bots detected = %v", res.Detected)
		}
		b.ReportMetric(float64(len(res.Detected)), "bots-found")
		b.ReportMetric(float64(res.Windows), "windows")
	}
}

// BenchmarkE2ExchangeValidation — §8.2, Figs. 11–12.
func BenchmarkE2ExchangeValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E2ExchangeValidation(experiments.E2Config{
			Users: 1200, Duration: 2 * time.Minute, EnableAt: time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		before, after := res.CountBeforeAfter("4")
		if before != 0 || after == 0 {
			b.Fatalf("onboarding shape broken: before=%d after=%d", before, after)
		}
		b.ReportMetric(float64(after), "new-exchange-imps")
	}
}

// BenchmarkE3ABTesting — §8.3, Figs. 13–15.
func BenchmarkE3ABTesting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E3ABTesting(experiments.E3Config{
			Users: 2500, Duration: 3 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.A.CTR <= 0 || res.B.CTR <= res.A.CTR {
			b.Fatalf("A/B shape broken: %+v", res)
		}
		b.ReportMetric(res.B.CTR/res.A.CTR, "ctr-lift-B/A")
		b.ReportMetric(res.B.CPM/res.A.CPM, "cpm-ratio-B/A")
	}
}

// BenchmarkE4Exclusions — §8.4, Figs. 16–17.
func BenchmarkE4Exclusions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E4Exclusions(experiments.E4Config{
			Users: 400, Duration: time.Minute, LineItems: 80,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalJoined == 0 {
			b.Fatal("no joined rows")
		}
		b.ReportMetric(float64(res.TotalJoined), "joined-rows")
		b.ReportMetric(float64(res.ExclusionEventsLogged), "raw-events")
	}
}

// BenchmarkE5Cannibalization — §8.5, Figs. 18–19.
func BenchmarkE5Cannibalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E5Cannibalization(experiments.E5Config{
			Users: 800, Duration: time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.LambdaWins != 0 || res.MinWinnerAvg <= res.LambdaBandHigh {
			b.Fatalf("cannibalization shape broken: %+v", res)
		}
		b.ReportMetric(res.MinWinnerAvg-res.LambdaBandHigh, "price-gap-$")
	}
}

// BenchmarkE6FrequencyCap — §8.6.
func BenchmarkE6FrequencyCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E6FrequencyCap(experiments.E6Config{
			Users: 400, CorruptUsers: 3, Duration: 2 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.OverServed) == 0 {
			b.Fatal("no over-served users")
		}
		b.ReportMetric(float64(len(res.OverServed)), "corrupt-users-found")
	}
}

// BenchmarkP1HostOverhead — §9/abstract: host CPU overhead.
func BenchmarkP1HostOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.P1HostOverhead(experiments.P1Config{
			Requests: 15000, QuerySweep: []int{0, 8, 32},
		})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.OverheadPct, "overhead-%-at-32q")
		b.ReportMetric(last.NsPerReq, "ns/request")
	}
}

// BenchmarkP2RequestLatency — §9/abstract: request latency delta.
func BenchmarkP2RequestLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.P2RequestLatency(experiments.P2Config{
			Requests: 10000, Queries: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanDeltaPct, "latency-delta-%")
		b.ReportMetric(res.On.P99, "p99-on-µs")
	}
}

// BenchmarkP3SamplingAccuracy — §3.2, Eqs. 1–3.
func BenchmarkP3SamplingAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.P3SamplingAccuracy(experiments.P3Config{
			Hosts: 40, PerHost: 300, Trials: 150,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Report the paper's 10%/10% setting.
		for _, p := range res.Points {
			if p.HostRate == 0.1 && p.EventRate == 0.1 {
				b.ReportMetric(p.Coverage, "coverage-10/10")
				b.ReportMetric(p.MeanRelErr, "rel-err-10/10")
			}
		}
	}
}

// BenchmarkP4CentralThroughput — §9 (reconstructed).
func BenchmarkP4CentralThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.P4CentralThroughput(experiments.P4Config{
			Tuples: 200000, Cardinalities: []int{1000},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			switch p.Shape {
			case "select-only":
				b.ReportMetric(p.TuplesPerS, "select-tuples/s")
			case "join (bid ⋈ exclusion)":
				b.ReportMetric(p.TuplesPerS, "join-tuples/s")
			}
		}
	}
}

// BenchmarkP5VsLogging — §1/§8.1 logging contrast.
func BenchmarkP5VsLogging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.P5VsLogging(experiments.P5Config{
			Users: 500, Duration: time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.BytesRatio < 1 {
			b.Fatalf("logging cheaper than Scrub? ratio %.2f", res.BytesRatio)
		}
		b.ReportMetric(res.BytesRatio, "bytes-ratio-log/scrub")
	}
}

// BenchmarkA1Ablation — host-side vs central aggregation (§4/§6 design
// choice).
func BenchmarkA1Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.A1HostVsCentralAggregation(experiments.A1Config{
			Events: 500000, Cardinalities: []int{100, 100000},
		})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.ScrubNsPerEvent, "scrub-ns/event")
		b.ReportMetric(last.AblatedNsPerEvent, "ablated-ns/event")
		b.ReportMetric(float64(last.AblatedGroups), "host-resident-groups")
	}
}

// BenchmarkA2Baggage — baggage propagation vs on-demand queries (§8.4
// contrast with Pivot-Tracing-style systems).
func BenchmarkA2Baggage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.A2BaggageVsOnDemand(experiments.A2Config{
			Users: 300, Duration: time.Minute, LineItems: 80,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BaggageMeanBytes, "baggage-bytes/req")
		b.ReportMetric(res.Ratio, "bytes-ratio-active")
	}
}

// BenchmarkP6Sketches — §3.2 probabilistic aggregates.
func BenchmarkP6Sketches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.P6Sketches(experiments.P6Config{
			StreamLen: 300000, Ks: []int{10}, Cardinalities: []int{100000},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TopK[0].Precision, "top10-precision")
		b.ReportMetric(res.HLL[0].RelErr, "hll-rel-err")
	}
}
