module scrub

go 1.22
