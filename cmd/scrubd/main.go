// Command scrubd runs a standalone Scrub host agent: it registers with
// the query server's control port, ships tuples to ScrubCentral's data
// port, and — since an agent without an application produces nothing —
// optionally generates demo events so a fresh deployment can be smoke-
// tested end to end.
//
// In a real integration the agent is embedded in the application process
// (internal/host); scrubd exists for deployment bring-up and protocol
// testing.
//
// Usage:
//
//	scrubd -host bid-sj-1 -service BidServers -dc DC1 \
//	    -control 127.0.0.1:7701 -data 127.0.0.1:7702 \
//	    -schema events.schema -demo bid=200
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/coord"
	"scrub/internal/event"
	"scrub/internal/governor"
	"scrub/internal/host"
	"scrub/internal/obs"
	"scrub/internal/replay"
	"scrub/internal/transport"
)

func main() {
	hostID := flag.String("host", "", "unique host name (required)")
	service := flag.String("service", "", "service name, e.g. BidServers (required)")
	dc := flag.String("dc", "DC1", "data center label")
	controlAddr := flag.String("control", "127.0.0.1:7701", "query server control address")
	dataAddr := flag.String("data", "127.0.0.1:7702", "ScrubCentral data address")
	schemaPath := flag.String("schema", "", "schema file declaring the event types")
	useAdPlatform := flag.Bool("adplatform", false, "register the simulated ad platform's event types")
	demo := flag.String("demo", "", "generate demo events: type=rate[,type=rate...] per second")
	seed := flag.Int64("seed", 1, "demo generator seed")
	metricsAddr := flag.String("metrics", "", "observability listen address for /metrics and /debug/pprof (e.g. 127.0.0.1:0); empty disables")
	hostCPU := flag.Float64("budget-cpu", 0, "global per-host CPU budget for all scrub work, as a fraction of one core (0 disables)")
	hostBytes := flag.Float64("budget-bytes", 0, "global per-host shipping budget in bytes/sec (0 disables)")
	record := flag.Bool("record", false, "record every logged event into the local replay store so REPLAY queries can ship history")
	recordDir := flag.String("record-dir", "", "directory for the replay store's disk tier (empty keeps sealed chunks in memory only)")
	recordRetain := flag.Duration("record-retain", 0, "replay store retention window; chunks older than this are evicted (0 = default 15m)")
	flag.Parse()

	if *hostID == "" || *service == "" {
		log.Fatal("scrubd: -host and -service are required")
	}
	catalog := event.NewCatalog()
	if *useAdPlatform {
		adplatform.RegisterEventTypes(catalog)
	}
	if *schemaPath != "" {
		text, err := os.ReadFile(*schemaPath)
		if err != nil {
			log.Fatalf("scrubd: %v", err)
		}
		schemas, err := event.ParseSchemas(string(text))
		if err != nil {
			log.Fatalf("scrubd: %v", err)
		}
		for _, s := range schemas {
			if err := catalog.Register(s); err != nil {
				log.Fatalf("scrubd: %v", err)
			}
		}
	}
	if catalog.Len() == 0 {
		log.Fatal("scrubd: no event types; pass -schema or -adplatform")
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	var recStore *replay.Store
	if *record {
		var err error
		recStore, err = replay.Open(replay.Options{
			Catalog: catalog,
			Dir:     *recordDir,
			MaxAge:  *recordRetain,
			Metrics: reg,
		})
		if err != nil {
			log.Fatalf("scrubd: replay store: %v", err)
		}
	} else if *recordDir != "" || *recordRetain != 0 {
		log.Fatal("scrubd: -record-dir/-record-retain require -record")
	}
	sink := host.NewNetSinkWith(*dataAddr, *hostID, host.NetSinkOptions{Metrics: reg})
	// Batches route through the shard fabric when the control plane pins
	// queries to a shard-map epoch; unpinned queries fall back to the
	// plain data connection, so the same agent serves both deployments.
	md := &manifestDialer{addr: *dataAddr, hostID: *hostID}
	router := coord.NewRouter(md.send, sink.SendBatch)
	agent, err := host.New(host.Config{
		HostID: *hostID, Service: *service, DC: *dc,
		Catalog: catalog, Sink: router,
		Metrics: reg,
		Record:  recStore,
		Governor: governor.Config{
			HostBudget: governor.Budget{CPUPct: *hostCPU, BytesPerSec: *hostBytes},
		},
	})
	if err != nil {
		log.Fatalf("scrubd: %v", err)
	}
	sink.SetDropAccounting(agent.AccountDrops)
	if reg != nil {
		bound, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("scrubd: metrics listener: %v", err)
		}
		// Parseable line: scripts/metricssmoke scrapes the bound address.
		fmt.Printf("scrubd metrics: http://%s/metrics\n", bound)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		opts := host.ControlOptions{
			Metrics:      reg,
			OnShardMap:   router.HandleShardMap,
			OnQueryPin:   router.PinQuery,
			OnQueryUnpin: router.UnpinQuery,
		}
		if err := agent.RunControlWith(ctx, *controlAddr, opts); err != nil && ctx.Err() == nil {
			log.Printf("scrubd: control loop: %v", err)
		}
	}()

	if *demo != "" {
		if err := startDemoGenerators(ctx, agent, catalog, *demo, *seed); err != nil {
			log.Fatalf("scrubd: %v", err)
		}
	}

	fmt.Printf("scrubd up: host=%s service=%s dc=%s types=%v\n", *hostID, *service, *dc, catalog.Names())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	cancel()
	agent.Close()
	router.Close()
	md.close()
	sink.Close()
	if recStore != nil {
		recStore.Close()
	}
	st := agent.Stats()
	fmt.Printf("scrubd: done. logged=%d matched=%d shipped=%d drops=%d\n",
		st.Logged, st.Matched, st.Shipped, st.QueueDrops)
}

// manifestDialer lazily opens the router's manifest channel to the
// coordinator's data plane. Errors reset the connection so the next
// manifest redials — transient coordinator outages cost manifests (the
// counters are cumulative, so the next one supersedes them), not state.
type manifestDialer struct {
	addr   string
	hostID string

	mu   sync.Mutex
	conn *transport.Conn
	fn   coord.ManifestFunc
}

func (d *manifestDialer) send(m transport.BatchManifest) error {
	d.mu.Lock()
	if d.fn == nil {
		conn, err := transport.Dial(d.addr, 3*time.Second)
		if err != nil {
			d.mu.Unlock()
			return err
		}
		if err := conn.Send(transport.DataHello{HostID: d.hostID}); err != nil {
			conn.Close()
			d.mu.Unlock()
			return err
		}
		d.conn, d.fn = conn, coord.NewManifestClient(conn)
	}
	fn := d.fn
	d.mu.Unlock()
	if err := fn(m); err != nil {
		d.close()
		return err
	}
	return nil
}

func (d *manifestDialer) close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.conn != nil {
		d.conn.Close()
	}
	d.conn, d.fn = nil, nil
}

// startDemoGenerators spawns one goroutine per type=rate spec, producing
// random-but-typed events.
func startDemoGenerators(ctx context.Context, agent *host.Agent, catalog *event.Catalog, spec string, seed int64) error {
	reqGen := event.NewRequestIDGenerator(uint16(seed))
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad -demo entry %q (want type=rate)", part)
		}
		schema, ok := catalog.Lookup(kv[0])
		if !ok {
			return fmt.Errorf("-demo type %q not in catalog", kv[0])
		}
		rate, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || rate <= 0 {
			return fmt.Errorf("bad -demo rate %q", kv[1])
		}
		go func(schema *event.Schema, rate float64, genSeed int64) {
			rng := rand.New(rand.NewSource(genSeed))
			interval := time.Duration(float64(time.Second) / rate)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					agent.Log(randomEvent(schema, reqGen.Next(), rng))
				}
			}
		}(schema, rate, seed+int64(len(kv[0])))
	}
	return nil
}

// randomEvent fills a schema with plausible random values.
func randomEvent(schema *event.Schema, reqID uint64, rng *rand.Rand) *event.Event {
	b := event.NewBuilder(schema).SetRequestID(reqID).SetTime(time.Now())
	words := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for i := 0; i < schema.NumFields(); i++ {
		f := schema.Field(i)
		switch f.Kind {
		case event.KindBool:
			b.Bool(f.Name, rng.Intn(2) == 0)
		case event.KindInt:
			b.Int(f.Name, int64(rng.Intn(1000)))
		case event.KindFloat:
			b.Float(f.Name, rng.Float64()*10)
		case event.KindString:
			b.Str(f.Name, words[rng.Intn(len(words))])
		case event.KindTime:
			b.Time(f.Name, time.Now())
		case event.KindList:
			switch f.Elem {
			case event.KindInt:
				b.Set(f.Name, event.IntList(int64(rng.Intn(10)), int64(rng.Intn(10))))
			case event.KindFloat:
				b.Set(f.Name, event.FloatList(rng.Float64(), rng.Float64()))
			case event.KindString:
				b.Set(f.Name, event.StrList(words[rng.Intn(len(words))]))
			}
		}
	}
	return b.MustBuild()
}
