// Command scrubcentral runs the central half of a Scrub deployment in one
// process: the query server and ScrubCentral, fronted by three TCP
// listeners — client (troubleshooters), control (host agents register and
// receive query objects), and data (tuple batches).
//
// The event catalog comes from a schema file (see internal/event schema-
// file syntax) or, with -adplatform, the simulated ad platform's types.
//
// A distributed deployment splits ScrubCentral across processes:
//
//	scrubcentral -shard :7710 -join 127.0.0.1:7702   # one per shard
//	scrubcentral -coord -schema events.schema \
//	    -client :7700 -control :7701 -data :7702     # the coordinator
//
// The coordinator owns query registration and shard membership; shard
// processes hold the window state for their slice of the request-id
// space. Shards enroll statically (-shard-addrs on the coordinator) or
// dynamically (-join on the shard).
//
// Usage:
//
//	scrubcentral -schema events.schema \
//	    -client :7700 -control :7701 -data :7702
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/central"
	"scrub/internal/cluster"
	"scrub/internal/coord"
	"scrub/internal/event"
	"scrub/internal/obs"
	"scrub/internal/server"
	"scrub/internal/transport"
)

func main() {
	schemaPath := flag.String("schema", "", "schema file declaring the event types")
	useAdPlatform := flag.Bool("adplatform", false, "register the simulated ad platform's event types")
	clientAddr := flag.String("client", "127.0.0.1:7700", "client (troubleshooter) listen address")
	controlAddr := flag.String("control", "127.0.0.1:7701", "agent control listen address")
	dataAddr := flag.String("data", "127.0.0.1:7702", "agent data listen address")
	shards := flag.Int("shards", 1, "ScrubCentral shards (>1 runs the sharded cluster)")
	metricsAddr := flag.String("metrics", "", "observability listen address for /metrics and /debug/pprof (e.g. 127.0.0.1:0); empty disables")
	coordMode := flag.Bool("coord", false, "run ScrubCentral as a multi-process shard-fabric coordinator")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated shard data addresses to enroll at startup (with -coord)")
	shardListen := flag.String("shard", "", "run as a shard process serving shard RPC on this address (exclusive with -coord)")
	joinAddr := flag.String("join", "", "coordinator data address to announce this shard to (with -shard)")
	advertise := flag.String("advertise", "", "address the coordinator should dial this shard back on (with -shard -join; default: the bound -shard address)")
	peers := flag.String("peers", "", "comma-separated standby replication addresses to stream the control-plane log to (with -coord)")
	standbyListen := flag.String("standby", "", "run as a warm coordinator standby serving replication RPC on this address (exclusive with -coord/-shard)")
	failoverTimeout := flag.Duration("failover-timeout", 2*time.Second, "leader silence before the standby promotes itself (with -standby)")
	standbyRank := flag.Int("rank", 0, "standby rank: rank N waits (N+1) failover timeouts, so lower ranks promote first (with -standby)")
	flag.Parse()

	if *coordMode && *shardListen != "" {
		log.Fatal("scrubcentral: -coord and -shard are mutually exclusive")
	}
	if *standbyListen != "" && (*coordMode || *shardListen != "") {
		log.Fatal("scrubcentral: -standby is exclusive with -coord and -shard")
	}
	if *peers != "" && !*coordMode {
		log.Fatal("scrubcentral: -peers requires -coord")
	}

	catalog := event.NewCatalog()
	if *useAdPlatform {
		adplatform.RegisterEventTypes(catalog)
	}
	if *schemaPath != "" {
		text, err := os.ReadFile(*schemaPath)
		if err != nil {
			log.Fatalf("scrubcentral: read schema: %v", err)
		}
		schemas, err := event.ParseSchemas(string(text))
		if err != nil {
			log.Fatalf("scrubcentral: %v", err)
		}
		for _, s := range schemas {
			if err := catalog.Register(s); err != nil {
				log.Fatalf("scrubcentral: %v", err)
			}
		}
	}
	if catalog.Len() == 0 {
		log.Fatal("scrubcentral: no event types; pass -schema or -adplatform")
	}

	if *shardListen != "" {
		runShard(catalog, *shardListen, *joinAddr, *advertise)
		return
	}
	if *standbyListen != "" {
		runStandby(standbyConfig{
			catalog: catalog, listen: *standbyListen,
			clientAddr: *clientAddr, controlAddr: *controlAddr, dataAddr: *dataAddr,
			metricsAddr: *metricsAddr,
			timeout:     *failoverTimeout, rank: *standbyRank,
		})
		return
	}

	registry := cluster.NewRegistry()
	hub, err := server.NewHub(registry, *clientAddr, *controlAddr, *dataAddr)
	if err != nil {
		log.Fatalf("scrubcentral: %v", err)
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	copt := central.Options{Metrics: reg}
	var engine central.Executor = central.NewEngineWith(copt)
	var coordEng *coord.Coordinator
	switch {
	case *coordMode:
		coordEng = coord.NewCoordinator(copt)
		for _, addr := range strings.Split(*shardAddrs, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			if err := coordEng.AddShard(addr); err != nil {
				log.Fatalf("scrubcentral: enroll shard %s: %v", addr, err)
			}
		}
		if *peers != "" {
			// Replicate the control plane to warm standbys under fencing
			// term 1; a standby that takes over promotes to term 2+.
			coordEng.StartReplication(coord.ReplicationConfig{Term: 1})
			for _, addr := range splitAddrs(*peers) {
				if err := coordEng.AddStandby(addr); err != nil {
					log.Fatalf("scrubcentral: add standby %s: %v", addr, err)
				}
			}
		}
		engine = coordEng
	case *shards > 1:
		se, err := central.NewShardedEngineWith(*shards, copt)
		if err != nil {
			log.Fatalf("scrubcentral: %v", err)
		}
		engine = se
	}
	srv, err := server.New(server.Config{
		Catalog:    catalog,
		Registry:   registry,
		Engine:     engine,
		Dispatcher: hub,
	})
	if err != nil {
		log.Fatalf("scrubcentral: %v", err)
	}
	hub.SetMetrics(reg)
	hub.SetServer(srv)
	if coordEng != nil {
		// Push every membership epoch to registered hosts; the hook may
		// fire under the coordinator's lock, so dispatch asynchronously.
		coordEng.OnShardMap(func(m transport.ShardMap) { go hub.BroadcastShardMap(m) })
	}
	hub.Serve()

	if reg != nil {
		bound, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("scrubcentral: metrics listener: %v", err)
		}
		// Parseable line: scripts/metricssmoke scrapes the bound address.
		fmt.Printf("scrubcentral metrics: http://%s/metrics\n", bound)
	}
	fmt.Printf("scrubcentral up\n  client:  %s\n  control: %s\n  data:    %s\n  event types: %v\n",
		hub.ClientAddr(), hub.ControlAddr(), hub.DataAddr(), catalog.Names())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("scrubcentral: shutting down")
	srv.Close()
	hub.Close()
}

// runShard serves one shard process: an Engine in driven mode behind the
// shard RPC listener. With -join it announces itself on the coordinator's
// data plane; the coordinator dials the advertised address back and pushes
// a new shard-map epoch to the host fleet.
func runShard(catalog *event.Catalog, listen, join, advertise string) {
	node := coord.NewShardNode(catalog)
	l, err := transport.Listen(listen)
	if err != nil {
		log.Fatalf("scrubcentral: shard listener: %v", err)
	}
	go node.Serve(l)
	if advertise == "" {
		advertise = l.Addr()
	}
	fmt.Printf("scrubcentral shard up\n  shard rpc: %s\n  event types: %v\n", l.Addr(), catalog.Names())

	var joinConn *transport.Conn
	if join != "" {
		joinConn, err = transport.Dial(join, 3*time.Second)
		if err != nil {
			log.Fatalf("scrubcentral: join %s: %v", join, err)
		}
		if err := joinConn.Send(transport.DataHello{HostID: "shard:" + advertise}); err != nil {
			log.Fatalf("scrubcentral: join %s: %v", join, err)
		}
		if err := joinConn.Send(transport.ShardHello{ShardID: advertise, DataAddr: advertise}); err != nil {
			log.Fatalf("scrubcentral: join %s: %v", join, err)
		}
		// Hold the connection open (and drain it) so the coordinator's hub
		// keeps the session; membership health rides the dialed-back RPC
		// connection, not this one.
		go func() {
			for {
				if _, err := joinConn.Recv(); err != nil {
					return
				}
			}
		}()
		fmt.Printf("  joined: %s (advertised %s)\n", join, advertise)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("scrubcentral shard: shutting down")
	l.Close()
	if joinConn != nil {
		joinConn.Close()
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

type standbyConfig struct {
	catalog                           *event.Catalog
	listen                            string
	clientAddr, controlAddr, dataAddr string
	metricsAddr                       string
	timeout                           time.Duration
	rank                              int
}

// runStandby serves one warm coordinator standby: it shadows the leader's
// replicated control-plane log, and when the leader falls silent for the
// (rank-staggered) failover timeout, it promotes — fencing the shards
// under a higher epoch, resuming every replicated query, and taking over
// the leader's client/control/data addresses so host agents and
// troubleshooters reconnect to it transparently.
func runStandby(cfg standbyConfig) {
	l, err := transport.Listen(cfg.listen)
	if err != nil {
		log.Fatalf("scrubcentral: standby listener: %v", err)
	}
	var reg *obs.Registry
	if cfg.metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	sb := coord.NewStandby(coord.StandbyOptions{
		Central:         central.Options{Metrics: reg},
		Catalog:         cfg.catalog,
		FailoverTimeout: cfg.timeout,
		Rank:            cfg.rank,
	})
	go sb.Serve(l)
	fmt.Printf("scrubcentral standby up\n  replication: %s\n  rank: %d  failover timeout: %s\n",
		l.Addr(), cfg.rank, cfg.timeout*time.Duration(cfg.rank+1))

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() { <-sig; close(stop) }()

	if !sb.AwaitFailover(stop) {
		fmt.Println("scrubcentral standby: shutting down")
		l.Close()
		return
	}
	term, applied, qids := sb.Snapshot()
	fmt.Printf("scrubcentral standby: leader silent — promoting (term %d, %d log entries, queries %v)\n",
		term, applied, qids)

	coordEng, resumed, err := sb.Promote(func(rq coord.ResumedQuery, _ *central.Plan) central.EmitFunc {
		// The submitter's client connection died with the leader; windows
		// of resumed queries are printed until the span expires (a future
		// re-attach surface would hook in here). Parseable line: the
		// failover smoke counts these.
		id := rq.QueryID
		return func(rw transport.ResultWindow) {
			fmt.Printf("scrubcentral adopted window: query %d [%d,%d) rows=%d degraded=%v\n",
				id, rw.WindowStart, rw.WindowEnd, len(rw.Rows), rw.Degraded)
		}
	})
	if err != nil {
		log.Fatalf("scrubcentral: promote: %v", err)
	}

	// The leader is dead, so its addresses are free — but kernel teardown
	// of a kill -9'd listener can lag a moment; retry briefly.
	registry := cluster.NewRegistry()
	var hub *server.Hub
	for attempt := 0; ; attempt++ {
		hub, err = server.NewHub(registry, cfg.clientAddr, cfg.controlAddr, cfg.dataAddr)
		if err == nil {
			break
		}
		if attempt >= 20 {
			log.Fatalf("scrubcentral: bind leader addresses: %v", err)
		}
		time.Sleep(250 * time.Millisecond)
	}
	srv, err := server.New(server.Config{
		Catalog:    cfg.catalog,
		Registry:   registry,
		Engine:     coordEng,
		Dispatcher: hub,
	})
	if err != nil {
		log.Fatalf("scrubcentral: %v", err)
	}
	hub.SetMetrics(reg)
	hub.SetServer(srv)
	coordEng.OnShardMap(func(m transport.ShardMap) { go hub.BroadcastShardMap(m) })
	for _, rq := range resumed {
		id := rq.QueryID
		_, err := srv.Adopt(id, rq.Text,
			time.Unix(0, rq.StartNanos), time.Unix(0, rq.EndNanos), rq.PinEpoch,
			server.Callbacks{Done: func(qd transport.QueryDone) {
				log.Printf("scrubcentral: adopted query %d done: %+v", id, qd.Stats)
			}})
		if err != nil {
			log.Printf("scrubcentral: adopt query %d: %v", id, err)
		}
	}
	hub.Serve()

	if reg != nil {
		bound, err := obs.Serve(cfg.metricsAddr, reg)
		if err != nil {
			log.Fatalf("scrubcentral: metrics listener: %v", err)
		}
		fmt.Printf("scrubcentral metrics: http://%s/metrics\n", bound)
	}
	fmt.Printf("scrubcentral up (promoted leader, fence %d)\n  client:  %s\n  control: %s\n  data:    %s\n  resumed queries: %d\n",
		coordEng.Fence(), hub.ClientAddr(), hub.ControlAddr(), hub.DataAddr(), len(resumed))

	<-stop
	fmt.Println("scrubcentral: shutting down")
	srv.Close()
	hub.Close()
}
