// Command scrubcentral runs the central half of a Scrub deployment in one
// process: the query server and ScrubCentral, fronted by three TCP
// listeners — client (troubleshooters), control (host agents register and
// receive query objects), and data (tuple batches).
//
// The event catalog comes from a schema file (see internal/event schema-
// file syntax) or, with -adplatform, the simulated ad platform's types.
//
// A distributed deployment splits ScrubCentral across processes:
//
//	scrubcentral -shard :7710 -join 127.0.0.1:7702   # one per shard
//	scrubcentral -coord -schema events.schema \
//	    -client :7700 -control :7701 -data :7702     # the coordinator
//
// The coordinator owns query registration and shard membership; shard
// processes hold the window state for their slice of the request-id
// space. Shards enroll statically (-shard-addrs on the coordinator) or
// dynamically (-join on the shard).
//
// Usage:
//
//	scrubcentral -schema events.schema \
//	    -client :7700 -control :7701 -data :7702
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/central"
	"scrub/internal/cluster"
	"scrub/internal/coord"
	"scrub/internal/event"
	"scrub/internal/obs"
	"scrub/internal/server"
	"scrub/internal/transport"
)

func main() {
	schemaPath := flag.String("schema", "", "schema file declaring the event types")
	useAdPlatform := flag.Bool("adplatform", false, "register the simulated ad platform's event types")
	clientAddr := flag.String("client", "127.0.0.1:7700", "client (troubleshooter) listen address")
	controlAddr := flag.String("control", "127.0.0.1:7701", "agent control listen address")
	dataAddr := flag.String("data", "127.0.0.1:7702", "agent data listen address")
	shards := flag.Int("shards", 1, "ScrubCentral shards (>1 runs the sharded cluster)")
	metricsAddr := flag.String("metrics", "", "observability listen address for /metrics and /debug/pprof (e.g. 127.0.0.1:0); empty disables")
	coordMode := flag.Bool("coord", false, "run ScrubCentral as a multi-process shard-fabric coordinator")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated shard data addresses to enroll at startup (with -coord)")
	shardListen := flag.String("shard", "", "run as a shard process serving shard RPC on this address (exclusive with -coord)")
	joinAddr := flag.String("join", "", "coordinator data address to announce this shard to (with -shard)")
	advertise := flag.String("advertise", "", "address the coordinator should dial this shard back on (with -shard -join; default: the bound -shard address)")
	flag.Parse()

	if *coordMode && *shardListen != "" {
		log.Fatal("scrubcentral: -coord and -shard are mutually exclusive")
	}

	catalog := event.NewCatalog()
	if *useAdPlatform {
		adplatform.RegisterEventTypes(catalog)
	}
	if *schemaPath != "" {
		text, err := os.ReadFile(*schemaPath)
		if err != nil {
			log.Fatalf("scrubcentral: read schema: %v", err)
		}
		schemas, err := event.ParseSchemas(string(text))
		if err != nil {
			log.Fatalf("scrubcentral: %v", err)
		}
		for _, s := range schemas {
			if err := catalog.Register(s); err != nil {
				log.Fatalf("scrubcentral: %v", err)
			}
		}
	}
	if catalog.Len() == 0 {
		log.Fatal("scrubcentral: no event types; pass -schema or -adplatform")
	}

	if *shardListen != "" {
		runShard(catalog, *shardListen, *joinAddr, *advertise)
		return
	}

	registry := cluster.NewRegistry()
	hub, err := server.NewHub(registry, *clientAddr, *controlAddr, *dataAddr)
	if err != nil {
		log.Fatalf("scrubcentral: %v", err)
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	copt := central.Options{Metrics: reg}
	var engine central.Executor = central.NewEngineWith(copt)
	var coordEng *coord.Coordinator
	switch {
	case *coordMode:
		coordEng = coord.NewCoordinator(copt)
		for _, addr := range strings.Split(*shardAddrs, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			if err := coordEng.AddShard(addr); err != nil {
				log.Fatalf("scrubcentral: enroll shard %s: %v", addr, err)
			}
		}
		engine = coordEng
	case *shards > 1:
		se, err := central.NewShardedEngineWith(*shards, copt)
		if err != nil {
			log.Fatalf("scrubcentral: %v", err)
		}
		engine = se
	}
	srv, err := server.New(server.Config{
		Catalog:    catalog,
		Registry:   registry,
		Engine:     engine,
		Dispatcher: hub,
	})
	if err != nil {
		log.Fatalf("scrubcentral: %v", err)
	}
	hub.SetMetrics(reg)
	hub.SetServer(srv)
	if coordEng != nil {
		// Push every membership epoch to registered hosts; the hook may
		// fire under the coordinator's lock, so dispatch asynchronously.
		coordEng.OnShardMap(func(m transport.ShardMap) { go hub.BroadcastShardMap(m) })
	}
	hub.Serve()

	if reg != nil {
		bound, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("scrubcentral: metrics listener: %v", err)
		}
		// Parseable line: scripts/metricssmoke scrapes the bound address.
		fmt.Printf("scrubcentral metrics: http://%s/metrics\n", bound)
	}
	fmt.Printf("scrubcentral up\n  client:  %s\n  control: %s\n  data:    %s\n  event types: %v\n",
		hub.ClientAddr(), hub.ControlAddr(), hub.DataAddr(), catalog.Names())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("scrubcentral: shutting down")
	srv.Close()
	hub.Close()
}

// runShard serves one shard process: an Engine in driven mode behind the
// shard RPC listener. With -join it announces itself on the coordinator's
// data plane; the coordinator dials the advertised address back and pushes
// a new shard-map epoch to the host fleet.
func runShard(catalog *event.Catalog, listen, join, advertise string) {
	node := coord.NewShardNode(catalog)
	l, err := transport.Listen(listen)
	if err != nil {
		log.Fatalf("scrubcentral: shard listener: %v", err)
	}
	go node.Serve(l)
	if advertise == "" {
		advertise = l.Addr()
	}
	fmt.Printf("scrubcentral shard up\n  shard rpc: %s\n  event types: %v\n", l.Addr(), catalog.Names())

	var joinConn *transport.Conn
	if join != "" {
		joinConn, err = transport.Dial(join, 3*time.Second)
		if err != nil {
			log.Fatalf("scrubcentral: join %s: %v", join, err)
		}
		if err := joinConn.Send(transport.DataHello{HostID: "shard:" + advertise}); err != nil {
			log.Fatalf("scrubcentral: join %s: %v", join, err)
		}
		if err := joinConn.Send(transport.ShardHello{ShardID: advertise, DataAddr: advertise}); err != nil {
			log.Fatalf("scrubcentral: join %s: %v", join, err)
		}
		// Hold the connection open (and drain it) so the coordinator's hub
		// keeps the session; membership health rides the dialed-back RPC
		// connection, not this one.
		go func() {
			for {
				if _, err := joinConn.Recv(); err != nil {
					return
				}
			}
		}()
		fmt.Printf("  joined: %s (advertised %s)\n", join, advertise)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("scrubcentral shard: shutting down")
	l.Close()
	if joinConn != nil {
		joinConn.Close()
	}
}
