// Command scrubcentral runs the central half of a Scrub deployment in one
// process: the query server and ScrubCentral, fronted by three TCP
// listeners — client (troubleshooters), control (host agents register and
// receive query objects), and data (tuple batches).
//
// The event catalog comes from a schema file (see internal/event schema-
// file syntax) or, with -adplatform, the simulated ad platform's types.
//
// Usage:
//
//	scrubcentral -schema events.schema \
//	    -client :7700 -control :7701 -data :7702
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"scrub/internal/adplatform"
	"scrub/internal/central"
	"scrub/internal/cluster"
	"scrub/internal/event"
	"scrub/internal/obs"
	"scrub/internal/server"
)

func main() {
	schemaPath := flag.String("schema", "", "schema file declaring the event types")
	useAdPlatform := flag.Bool("adplatform", false, "register the simulated ad platform's event types")
	clientAddr := flag.String("client", "127.0.0.1:7700", "client (troubleshooter) listen address")
	controlAddr := flag.String("control", "127.0.0.1:7701", "agent control listen address")
	dataAddr := flag.String("data", "127.0.0.1:7702", "agent data listen address")
	shards := flag.Int("shards", 1, "ScrubCentral shards (>1 runs the sharded cluster)")
	metricsAddr := flag.String("metrics", "", "observability listen address for /metrics and /debug/pprof (e.g. 127.0.0.1:0); empty disables")
	flag.Parse()

	catalog := event.NewCatalog()
	if *useAdPlatform {
		adplatform.RegisterEventTypes(catalog)
	}
	if *schemaPath != "" {
		text, err := os.ReadFile(*schemaPath)
		if err != nil {
			log.Fatalf("scrubcentral: read schema: %v", err)
		}
		schemas, err := event.ParseSchemas(string(text))
		if err != nil {
			log.Fatalf("scrubcentral: %v", err)
		}
		for _, s := range schemas {
			if err := catalog.Register(s); err != nil {
				log.Fatalf("scrubcentral: %v", err)
			}
		}
	}
	if catalog.Len() == 0 {
		log.Fatal("scrubcentral: no event types; pass -schema or -adplatform")
	}

	registry := cluster.NewRegistry()
	hub, err := server.NewHub(registry, *clientAddr, *controlAddr, *dataAddr)
	if err != nil {
		log.Fatalf("scrubcentral: %v", err)
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	copt := central.Options{Metrics: reg}
	var engine central.Executor = central.NewEngineWith(copt)
	if *shards > 1 {
		se, err := central.NewShardedEngineWith(*shards, copt)
		if err != nil {
			log.Fatalf("scrubcentral: %v", err)
		}
		engine = se
	}
	srv, err := server.New(server.Config{
		Catalog:    catalog,
		Registry:   registry,
		Engine:     engine,
		Dispatcher: hub,
	})
	if err != nil {
		log.Fatalf("scrubcentral: %v", err)
	}
	hub.SetMetrics(reg)
	hub.SetServer(srv)
	hub.Serve()

	if reg != nil {
		bound, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("scrubcentral: metrics listener: %v", err)
		}
		// Parseable line: scripts/metricssmoke scrapes the bound address.
		fmt.Printf("scrubcentral metrics: http://%s/metrics\n", bound)
	}
	fmt.Printf("scrubcentral up\n  client:  %s\n  control: %s\n  data:    %s\n  event types: %v\n",
		hub.ClientAddr(), hub.ControlAddr(), hub.DataAddr(), catalog.Names())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("scrubcentral: shutting down")
	srv.Close()
	hub.Close()
}
