// Command scrubvet runs Scrub's custom static-analysis suite (package
// internal/analysis) over the module. It is wired into `make vet` and
// scripts/ci.sh ahead of the test steps, so contract violations fail
// the build before they can fail in production.
//
// Usage:
//
//	scrubvet [-C dir] [-analyzers hotpath,poolsafe,...] [-notests] [-json] [-seq] [packages...]
//
// -json emits one JSON object per finding (file/line/analyzer/message),
// for CI tooling. -seq runs the passes sequentially instead of
// concurrently (wall-time comparisons; see EXPERIMENTS.md).
//
// Exit status is 1 when any diagnostic is reported, 2 on load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"scrub/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "change to this directory (module root) before loading")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	noTests := flag.Bool("notests", false, "skip _test.go files (default: tests are analyzed too)")
	list := flag.Bool("list", false, "print the available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding instead of plain text")
	seq := flag.Bool("seq", false, "run analyzer passes sequentially instead of concurrently")
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		selected = nil
		for _, a := range all {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			for name := range want {
				fmt.Fprintf(os.Stderr, "scrubvet: unknown analyzer %q\n", name)
			}
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(analysis.LoadConfig{
		Dir:      *dir,
		Patterns: patterns,
		Tests:    !*noTests,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "scrubvet: %v\n", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	if *seq {
		diags = analysis.RunSequential(prog, selected)
	} else {
		diags = analysis.Run(prog, selected)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "scrubvet: %v\n", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scrubvet: %d issue(s) across %d analyzer(s)\n", len(diags), len(selected))
		os.Exit(1)
	}
}

// jsonFinding is the machine-readable diagnostic shape scripts/ci.sh
// prints on failure: one object per line.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}
