// Command benchrunner regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 and EXPERIMENTS.md). It runs the twelve
// experiments at full (or quick) scale and prints each as an aligned
// text table with the paper's qualitative claim attached. Beyond the
// paper's tables it also runs C1, a chaos soak over real TCP that pins
// the reproduction's failure-domain contract (degraded windows, lease
// eviction, spill redelivery).
//
// Usage:
//
//	benchrunner [-only E1,P3,...] [-quick] [-seed N] [-p1json FILE]
//
// When P1 runs, its sweep is also written as machine-readable JSON
// (default BENCH_P1.json) so the host-overhead trajectory is trackable
// across PRs; PS likewise writes its query-scale sweep (overlap vs
// distinct predicate mixes, default BENCH_P2.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"scrub/internal/experiments"
)

type runner struct {
	id  string
	run func(quick bool, seed int64) (*experiments.Table, error)
}

// p1JSONPath receives the P1 sweep as JSON; empty disables.
var p1JSONPath string

// p2JSONPath receives the PS query-scale sweep as JSON; empty disables.
var p2JSONPath string

// g1JSONPath receives the G1 governor comparison as JSON; empty disables.
var g1JSONPath string

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,P3); empty runs all")
	quick := flag.Bool("quick", false, "smaller configurations for a fast pass")
	seed := flag.Int64("seed", 0, "override experiment seeds (0 keeps per-experiment defaults)")
	flag.StringVar(&p1JSONPath, "p1json", "BENCH_P1.json", "file for the machine-readable P1 sweep (ns/request per query count); empty disables")
	flag.StringVar(&p2JSONPath, "p2json", "BENCH_P2.json", "file for the machine-readable PS query-scale sweep (overlap vs distinct predicate mixes); empty disables")
	flag.StringVar(&g1JSONPath, "g1json", "BENCH_G1.json", "file for the machine-readable G1 governor comparison (added ns and bytes shipped, unbounded vs budgeted); empty disables")
	flag.Parse()

	runners := []runner{
		{"E1", runE1}, {"E2", runE2}, {"E3", runE3},
		{"E4", runE4}, {"E5", runE5}, {"E6", runE6},
		{"P1", runP1}, {"PS", runPS}, {"P2", runP2}, {"P3", runP3},
		{"P4", runP4}, {"P5", runP5}, {"P6", runP6},
		{"A1", runA1}, {"A2", runA2},
		{"C1", runC1},
		{"G1", runG1},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	failures := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		start := time.Now()
		tab, err := r.run(*quick, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: FAILED: %v\n", r.id, err)
			failures++
			continue
		}
		tab.Notes = append(tab.Notes, fmt.Sprintf("experiment wall time: %s", time.Since(start).Round(time.Millisecond)))
		tab.Fprint(os.Stdout)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func runE1(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.E1Config{Seed: seed}
	if quick {
		cfg.Users, cfg.Duration = 400, 90*time.Second
	} else {
		cfg.Users, cfg.Duration = 2000, 10*time.Minute
	}
	res, err := experiments.E1SpamDetection(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runE2(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.E2Config{Seed: seed}
	if quick {
		cfg.Users, cfg.Duration, cfg.EnableAt = 1200, 2*time.Minute, time.Minute
	} else {
		cfg.Users, cfg.Duration = 3000, 6*time.Minute
	}
	res, err := experiments.E2ExchangeValidation(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runE3(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.E3Config{Seed: seed}
	if quick {
		cfg.Users, cfg.Duration = 2000, 2*time.Minute
	} else {
		cfg.Users, cfg.Duration = 6000, 6*time.Minute
	}
	res, err := experiments.E3ABTesting(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runE4(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.E4Config{Seed: seed}
	if quick {
		cfg.Users, cfg.Duration, cfg.LineItems = 400, time.Minute, 80
	} else {
		cfg.Users, cfg.Duration, cfg.LineItems = 1000, 3*time.Minute, 200
	}
	res, err := experiments.E4Exclusions(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runE5(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.E5Config{Seed: seed}
	if quick {
		cfg.Users, cfg.Duration = 800, time.Minute
	} else {
		cfg.Users, cfg.Duration = 2000, 4*time.Minute
	}
	res, err := experiments.E5Cannibalization(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runE6(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.E6Config{Seed: seed}
	if quick {
		cfg.Users, cfg.Duration = 400, 2*time.Minute
	} else {
		cfg.Users, cfg.Duration = 1500, 5*time.Minute
	}
	res, err := experiments.E6FrequencyCap(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runP1(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.P1Config{Seed: seed}
	if quick {
		cfg.Requests, cfg.QuerySweep = 10000, []int{0, 4, 16}
	} else {
		cfg.Requests = 60000
	}
	res, err := experiments.P1HostOverhead(cfg)
	if err != nil {
		return nil, err
	}
	if p1JSONPath != "" {
		if err := writeP1JSON(p1JSONPath, res); err != nil {
			return nil, err
		}
	}
	return res.Table(), nil
}

func runPS(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.PSConfig{Seed: seed}
	if quick {
		cfg.Requests, cfg.QuerySweep, cfg.Reps = 6000, []int{0, 8, 32}, 3
	} else {
		cfg.Requests = 30000
	}
	res, err := experiments.PSQueryScale(cfg)
	if err != nil {
		return nil, err
	}
	if p2JSONPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(p2JSONPath, append(b, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return res.Table(), nil
}

func writeP1JSON(path string, res *experiments.P1Result) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func runP2(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.P2Config{Seed: seed}
	if quick {
		cfg.Requests = 8000
	} else {
		cfg.Requests = 40000
	}
	res, err := experiments.P2RequestLatency(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runP3(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.P3Config{Seed: seed}
	if quick {
		cfg.Hosts, cfg.PerHost, cfg.Trials = 30, 200, 120
	}
	res, err := experiments.P3SamplingAccuracy(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runP4(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.P4Config{Seed: seed}
	if quick {
		cfg.Tuples, cfg.Cardinalities = 100000, []int{10, 1000}
	}
	res, err := experiments.P4CentralThroughput(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runP5(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.P5Config{Seed: seed}
	if quick {
		cfg.Users, cfg.Duration = 400, time.Minute
	} else {
		cfg.Users, cfg.Duration = 1200, 3*time.Minute
	}
	res, err := experiments.P5VsLogging(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runP6(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.P6Config{Seed: seed}
	if quick {
		cfg.StreamLen = 200000
	}
	res, err := experiments.P6Sketches(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runA2(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.A2Config{Seed: seed}
	if quick {
		cfg.Users, cfg.Duration, cfg.LineItems = 300, time.Minute, 80
	} else {
		cfg.Users, cfg.Duration, cfg.LineItems = 800, 2*time.Minute, 200
	}
	res, err := experiments.A2BaggageVsOnDemand(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runC1(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.C1Config{Seed: seed}
	if quick {
		cfg.Duration = 6 * time.Second
	} else {
		cfg.Duration = 30 * time.Second
	}
	res, err := experiments.C1ChaosSoak(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

func runG1(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.G1Config{Seed: seed}
	if quick {
		cfg.Requests = 10000
	} else {
		cfg.Requests = 40000
	}
	res, err := experiments.G1Governor(cfg)
	if err != nil {
		return nil, err
	}
	if g1JSONPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(g1JSONPath, append(b, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return res.Table(), nil
}

func runA1(quick bool, seed int64) (*experiments.Table, error) {
	cfg := experiments.A1Config{Seed: seed}
	if quick {
		cfg.Events = 500000
	}
	res, err := experiments.A1HostVsCentralAggregation(cfg)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}
