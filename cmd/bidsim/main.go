// Command bidsim runs the simulated Turn-style ad bidding platform with
// a Scrub cluster embedded, generates traffic, executes one Scrub query
// against the live platform, and prints the result windows — a one-shot
// "mini Turn" for trying the query language against realistic events.
//
// Usage:
//
//	bidsim -query 'select bid.user_id, count(*) from bid group by bid.user_id window 10s duration 1h' \
//	    -users 2000 -duration 5m -bots 2
//
// The -duration is virtual time: the simulator runs as fast as it can.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/host"
	"scrub/internal/ql"
	"scrub/internal/transport"
	"scrub/internal/workload"
)

func main() {
	query := flag.String("query", `select bid.exchange_id, count(*) from bid group by bid.exchange_id window 10s duration 1h`, "Scrub query to run")
	users := flag.Int("users", 1500, "human user population")
	duration := flag.Duration("duration", 2*time.Minute, "virtual traffic duration")
	bots := flag.Int("bots", 0, "number of spam bots to inject")
	lineItems := flag.Int("lineitems", 120, "line items in the portfolio")
	bidServers := flag.Int("bidservers", 4, "BidServer hosts")
	adServers := flag.Int("adservers", 4, "AdServer hosts")
	presServers := flag.Int("presservers", 4, "PresentationServer hosts")
	exclusions := flag.Bool("exclusions", false, "emit exclusion events (high volume)")
	auctions := flag.Bool("auctions", false, "emit auction events")
	explain := flag.Bool("explain", false, "print the query plan (host/central split) before running")
	shards := flag.Int("shards", 1, "ScrubCentral shards (>1 runs the sharded cluster)")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	platform, err := adplatform.New(adplatform.Config{
		NumBidServers:          *bidServers,
		NumAdServers:           *adServers,
		NumPresentationServers: *presServers,
		LineItems:              adplatform.GenerateLineItems(*lineItems, *seed),
		EmitExclusions:         *exclusions,
		EmitAuctions:           *auctions,
		Agent:                  host.Config{FlushInterval: 20 * time.Millisecond, QueueSize: 1 << 16},
		CentralShards:          *shards,
	})
	if err != nil {
		log.Fatalf("bidsim: %v", err)
	}
	defer platform.Close()

	var botSpecs []workload.BotSpec
	for b := 0; b < *bots; b++ {
		botSpecs = append(botSpecs, workload.BotSpec{
			UserID:    900001 + int64(b),
			BatchSize: 200 + 100*b,
			Period:    time.Duration(15+5*b) * time.Second,
		})
	}
	gen, err := workload.NewGenerator(workload.Spec{
		Seed: *seed, NumUsers: *users, MeanPageViewsPerMin: 3,
		Exchanges: []workload.Exchange{
			{ID: 1, Weight: 2}, {ID: 2, Weight: 1}, {ID: 3, Weight: 1},
		},
		Bots: botSpecs,
	}, time.Now().Add(5*time.Second))
	if err != nil {
		log.Fatalf("bidsim: %v", err)
	}
	gen.InstallProfiles(platform.Store)

	if *explain {
		q, err := ql.Parse(*query)
		if err != nil {
			log.Fatalf("bidsim: %v", err)
		}
		plan, err := ql.Analyze(q, platform.Catalog)
		if err != nil {
			log.Fatalf("bidsim: %v", err)
		}
		fmt.Print(ql.Explain(plan))
	}

	st, err := platform.Cluster.Query(*query)
	if err != nil {
		log.Fatalf("bidsim: query rejected: %v", err)
	}
	fmt.Printf("query %d on %d/%d hosts; columns %v\n",
		st.Info.ID, st.Info.SampledHosts, st.Info.NumHosts, st.Info.Columns)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for rw := range st.Windows {
			printWindow(rw)
		}
	}()

	start := time.Now()
	var served, clicked int
	n := gen.Run(*duration, func(r adplatform.BidRequest) {
		_, out, ok := platform.Process(r)
		if ok && out.Impression {
			served++
			if out.Click {
				clicked++
			}
		}
	})
	fmt.Printf("traffic: %d bid requests (%d impressions, %d clicks) over %s virtual in %s real\n",
		n, served, clicked, *duration, time.Since(start).Round(time.Millisecond))

	platform.Cluster.FlushAgents()
	platform.Cluster.FlushAgents()
	if err := platform.Cluster.Cancel(st.Info.ID); err != nil {
		log.Fatalf("bidsim: %v", err)
	}
	<-done
	stats := st.Final()
	fmt.Printf("query done: %d windows, %d rows, %d tuples (host drops %d, late drops %d)\n",
		stats.Windows, stats.Rows, stats.TuplesIn, stats.HostDrops, stats.LateDrops)
}

func printWindow(rw transport.ResultWindow) {
	fmt.Printf("-- window [%s, %s) tuples=%d hosts=%d\n",
		time.Unix(0, rw.WindowStart).Format("15:04:05"),
		time.Unix(0, rw.WindowEnd).Format("15:04:05"),
		rw.Stats.TuplesIn, rw.Stats.HostsReporting)
	fmt.Println("  " + strings.Join(rw.Columns, "\t"))
	max := len(rw.Rows)
	const cap = 20
	for i, row := range rw.Rows {
		if i == cap {
			fmt.Printf("  ... %d more rows\n", max-cap)
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
			if rw.Approx && j < len(rw.ErrBounds) && !math.IsNaN(rw.ErrBounds[j]) {
				parts[j] += fmt.Sprintf("±%.3g", rw.ErrBounds[j])
			}
		}
		fmt.Println("  " + strings.Join(parts, "\t"))
	}
}
