// Command scrubql is the troubleshooter's CLI: it submits a Scrub query
// to a running query server and streams result windows until the query's
// span ends (or -windows are collected, or ^C).
//
// Usage:
//
//	scrubql -server 127.0.0.1:7700 'select bid.user_id, count(*) from bid group by bid.user_id window 10s duration 1m'
//	echo 'select count(*) from bid' | scrubql -server 127.0.0.1:7700
//
// With -stats, each window also lists per-stream accounting — matched,
// sampled, dropped, and late tuples per (host, event type), plus the
// governor's view (effective sampling rate, cumulative cpu-ns and bytes,
// SHED state) — and flags DEGRADED windows whose missing hosts were
// evicted by lease expiry and SHED windows where a host's budget
// governor stopped the query.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scrub/internal/server"
	"scrub/internal/transport"
)

func main() {
	serverAddr := flag.String("server", "127.0.0.1:7700", "query server client address")
	maxWindows := flag.Int("windows", 0, "stop after this many windows (0 = run to span end)")
	quiet := flag.Bool("quiet", false, "suppress per-window headers")
	stats := flag.Bool("stats", false, "print per-stream accounting (matched/sampled/drops/late) and degraded state with each window")
	list := flag.Bool("list", false, "list the server's active queries and exit")
	flag.Parse()

	if *list {
		client, err := server.DialClient(*serverAddr)
		if err != nil {
			log.Fatalf("scrubql: %v", err)
		}
		defer client.Close()
		queries, err := client.List()
		if err != nil {
			log.Fatalf("scrubql: %v", err)
		}
		if len(queries) == 0 {
			fmt.Println("no active queries")
			return
		}
		for _, q := range queries {
			fmt.Printf("query %d  hosts=%d  ends=%s  windows=%d rows=%d tuples=%d drops=%d\n  %s\n",
				q.QueryID, q.Hosts, time.Unix(0, q.EndNanos).Format(time.RFC3339),
				q.Stats.Windows, q.Stats.Rows, q.Stats.TuplesIn,
				q.Stats.HostDrops+q.Stats.LateDrops,
				strings.Join(strings.Fields(q.Text), " "))
		}
		if *stats {
			if sl, err := client.ShardStatus(); err == nil {
				printShardStatus(sl)
			}
		}
		return
	}

	query := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(query) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatalf("scrubql: read stdin: %v", err)
		}
		query = string(data)
	}
	if strings.TrimSpace(query) == "" {
		log.Fatal("scrubql: no query given (argument or stdin)")
	}

	client, err := server.DialClient(*serverAddr)
	if err != nil {
		log.Fatalf("scrubql: %v", err)
	}
	defer client.Close()

	qs, err := client.Query(query)
	if err != nil {
		log.Fatalf("scrubql: %v", err)
	}
	fmt.Printf("query %d accepted: %d/%d hosts, columns %v, runs until %s\n",
		qs.Info.QueryID, qs.Info.SampledHosts, qs.Info.NumHosts, qs.Info.Columns,
		time.Unix(0, qs.Info.EndNanos).Format(time.RFC3339))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "scrubql: cancelling")
		_ = qs.Cancel()
	}()

	n := 0
	for rw := range qs.Windows {
		printWindow(rw, *quiet, *stats)
		n++
		if *maxWindows > 0 && n >= *maxWindows {
			_ = qs.Cancel()
			break
		}
	}
	final, err := qs.Final()
	if err != nil {
		log.Fatalf("scrubql: %v", err)
	}
	fmt.Printf("done: %d windows, %d rows, %d tuples in (host drops %d, late drops %d)\n",
		final.Windows, final.Rows, final.TuplesIn, final.HostDrops, final.LateDrops)
	if *stats && final.DegradedWindows > 0 {
		fmt.Printf("degraded windows: %d (at least one stream's liveness lease had expired at emission)\n",
			final.DegradedWindows)
	}
	if *stats && final.ShedWindows > 0 {
		fmt.Printf("shed windows: %d (at least one host's governor shed the query to hold its budget)\n",
			final.ShedWindows)
	}
	if *stats {
		// A distributed central also reports its per-shard view; a single-
		// process deployment answers with an empty list and prints nothing.
		if sl, err := client.ShardStatus(); err == nil {
			printShardStatus(sl)
		}
	}
}

// printShardStatus renders the shard-fabric table: one row per shard
// process with its liveness, query load, and merge lag (time since the
// coordinator's last successful RPC to it).
func printShardStatus(sl transport.ShardStatusList) {
	if sl.Epoch == 0 && len(sl.Shards) == 0 {
		return // single-process central: no shard fabric
	}
	fmt.Printf("shard fabric: epoch=%d shards=%d merges=%d rebalances=%d evicted-streams=%d\n",
		sl.Epoch, len(sl.Shards), sl.Merges, sl.Rebalances, sl.EvictedStreams)
	fmt.Println("  shard\taddr\tstate\tqueries\ttuples\tmerge-lag")
	for _, s := range sl.Shards {
		state := "up"
		if s.Down {
			state = "DOWN"
		}
		fmt.Printf("  %d\t%s\t%s\t%d\t%d\t%s\n",
			s.Index, s.Addr, state, s.ActiveQueries, s.TuplesIn, time.Duration(s.LagNanos))
	}
}

func printWindow(rw transport.ResultWindow, quiet, stats bool) {
	if !quiet {
		approx := ""
		if rw.Approx {
			approx = " (approximate)"
		}
		degraded := ""
		if rw.Degraded {
			degraded = " DEGRADED"
		}
		if rw.BudgetShed {
			degraded += " SHED"
		}
		fmt.Printf("-- window [%s, %s)%s%s  tuples=%d hosts=%d drops=%d\n",
			time.Unix(0, rw.WindowStart).Format("15:04:05"),
			time.Unix(0, rw.WindowEnd).Format("15:04:05"),
			approx, degraded, rw.Stats.TuplesIn, rw.Stats.HostsReporting,
			rw.Stats.HostDrops+rw.Stats.LateDrops)
		fmt.Println(strings.Join(rw.Columns, "\t"))
	}
	if stats {
		for _, s := range rw.Streams {
			state := ""
			if s.Evicted {
				state = "  EVICTED"
			}
			if s.BudgetShed {
				state += "  SHED"
			}
			gov := ""
			if s.EffRate > 0 {
				gov = fmt.Sprintf(" rate=%.3g%%", s.EffRate*100)
			}
			if s.CPUNs > 0 || s.Bytes > 0 {
				gov += fmt.Sprintf(" cpu=%dns bytes=%d", s.CPUNs, s.Bytes)
			}
			fmt.Printf("   stream %s/type%d: matched=%d sampled=%d drops=%d late=%d%s%s\n",
				s.HostID, s.TypeIdx, s.Matched, s.Sampled, s.Drops, s.LateDrops, gov, state)
		}
	}
	for _, row := range rw.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
			if rw.Approx && i < len(rw.ErrBounds) && !math.IsNaN(rw.ErrBounds[i]) {
				parts[i] += fmt.Sprintf("±%.3g", rw.ErrBounds[i])
			}
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}
